//! A handwritten Rust lexer, sufficient for line-precise lint rules.
//!
//! The goal is not full fidelity with `rustc`'s lexer but *sound token
//! boundaries*: rules must never fire on text inside comments, string
//! literals, raw strings, or char literals, and must never confuse a
//! lifetime (`'a`) with a char (`'a'`) or a float literal (`1.0`) with a
//! range (`1..2`). Everything a rule matches is a real code token with an
//! exact 1-based line and column.

/// Kinds of tokens the rule engine consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `as`, `unsafe`, …).
    Ident,
    /// Lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Char literal such as `'x'` or `'\n'`.
    Char,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e-3`, `2f64`).
    Float,
    /// Punctuation, possibly multi-char (`==`, `::`, `->`, `..=`).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Verbatim token text (string/char literals keep their quotes).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

impl Token {
    /// `true` if this is an identifier with exactly the given text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// `true` if this is punctuation with exactly the given text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// A comment (line or block), kept out of the token stream but retained for
/// suppression (`fdx-allow:`) and `// SAFETY:` auditing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body without the `//` / `/*` markers, untrimmed.
    pub text: String,
    /// 1-based line on which the comment starts.
    pub line: u32,
    /// 1-based line on which the comment ends (differs for block comments).
    pub end_line: u32,
}

/// Lexer output: code tokens plus the comment side-channel.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-char punctuation, longest first so greedy matching is correct.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes a whole source file. Unterminated constructs (string/comment) are
/// tolerated: the remainder of the file is consumed as that construct, which
/// is the forgiving behavior a lint tool wants on mid-edit files.
pub fn lex(src: &str) -> LexedFile {
    let mut cur = Cursor::new(src);
    let mut out = LexedFile::default();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                let mut text = String::new();
                cur.bump();
                cur.bump();
                while let Some(c) = cur.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.comments.push(Comment {
                    text,
                    line,
                    end_line: line,
                });
            }
            '/' if cur.peek(1) == Some('*') => {
                let mut text = String::new();
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            text.push_str("/*");
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                            if depth > 0 {
                                text.push_str("*/");
                            }
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text,
                    line,
                    end_line: cur.line,
                });
            }
            '"' => {
                let text = lex_quoted_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
            }
            '\'' => {
                let (kind, text) = lex_lifetime_or_char(&mut cur);
                out.tokens.push(Token {
                    kind,
                    text,
                    line,
                    col,
                });
            }
            _ if c.is_ascii_digit() => {
                let (kind, text) = lex_number(&mut cur);
                out.tokens.push(Token {
                    kind,
                    text,
                    line,
                    col,
                });
            }
            _ if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                // String-literal prefixes: r"…", r#"…"#, b"…", br#"…"#,
                // and raw identifiers r#ident.
                match (text.as_str(), cur.peek(0)) {
                    ("b", Some('"')) => {
                        // Byte strings have escapes, raw strings do not.
                        let body = lex_quoted_string(&mut cur);
                        out.tokens.push(Token {
                            kind: TokenKind::Str,
                            text: format!("{text}{body}"),
                            line,
                            col,
                        });
                    }
                    ("r" | "br" | "rb", Some('"')) => {
                        // Hashless raw string: `\` is a literal character, so
                        // the escape-aware scanner would overrun on `r"\"`.
                        // lex_raw_string handles the zero-hash case exactly.
                        let body = lex_raw_string(&mut cur);
                        out.tokens.push(Token {
                            kind: TokenKind::Str,
                            text: format!("{text}{body}"),
                            line,
                            col,
                        });
                    }
                    ("r" | "br" | "rb", Some('#')) => {
                        // Count hashes; a quote after them opens a raw string,
                        // anything else was a raw identifier (r#ident).
                        let mut hashes = 0usize;
                        while cur.peek(hashes) == Some('#') {
                            hashes += 1;
                        }
                        if cur.peek(hashes) == Some('"') {
                            let body = lex_raw_string(&mut cur);
                            out.tokens.push(Token {
                                kind: TokenKind::Str,
                                text: format!("{text}{body}"),
                                line,
                                col,
                            });
                        } else {
                            cur.bump(); // the single '#' of r#ident
                            let mut id = String::new();
                            while let Some(c) = cur.peek(0) {
                                if !is_ident_continue(c) {
                                    break;
                                }
                                id.push(c);
                                cur.bump();
                            }
                            out.tokens.push(Token {
                                kind: TokenKind::Ident,
                                text: id,
                                line,
                                col,
                            });
                        }
                    }
                    _ => out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text,
                        line,
                        col,
                    }),
                }
            }
            _ => {
                let matched = PUNCTS
                    .iter()
                    .find(|p| p.chars().enumerate().all(|(i, pc)| cur.peek(i) == Some(pc)));
                let text = match matched {
                    Some(p) => {
                        for _ in 0..p.chars().count() {
                            cur.bump();
                        }
                        (*p).to_string()
                    }
                    None => {
                        cur.bump();
                        c.to_string()
                    }
                };
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Consumes a `"…"` string starting at the opening quote (escape-aware).
fn lex_quoted_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push('"');
    cur.bump();
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(e) = cur.peek(0) {
                text.push(e);
                cur.bump();
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == '"' {
            break;
        }
    }
    text
}

/// Consumes a raw string starting at the first `#` (after the `r`/`br`
/// prefix has already been consumed): `#…#"…"#…#`.
fn lex_raw_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek(0) == Some('"') {
        text.push('"');
        cur.bump();
    }
    // Scan for `"` followed by `hashes` hashes.
    while let Some(c) = cur.peek(0) {
        text.push(c);
        cur.bump();
        if c == '"' && (0..hashes).all(|i| cur.peek(i) == Some('#')) {
            for _ in 0..hashes {
                text.push('#');
                cur.bump();
            }
            break;
        }
    }
    text
}

/// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal); the
/// cursor sits on the opening quote.
fn lex_lifetime_or_char(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    text.push('\'');
    cur.bump();
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume through the closing quote.
            while let Some(c) = cur.peek(0) {
                text.push(c);
                cur.bump();
                if c == '\\' {
                    if let Some(e) = cur.peek(0) {
                        text.push(e);
                        cur.bump();
                    }
                } else if c == '\'' {
                    break;
                }
            }
            (TokenKind::Char, text)
        }
        Some(c) if is_ident_start(c) => {
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
                (TokenKind::Char, text)
            } else {
                (TokenKind::Lifetime, text)
            }
        }
        Some(c) => {
            // Non-ident char literal: 'x' where x is punctuation/space/digit.
            text.push(c);
            cur.bump();
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            (TokenKind::Char, text)
        }
        None => (TokenKind::Char, text),
    }
}

/// Consumes a numeric literal; decides int vs. float.
fn lex_number(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    let mut is_float = false;
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O')) {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_hexdigit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        // Type suffix (u8, i64, usize, …).
        while let Some(c) = cur.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return (TokenKind::Int, text);
    }
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part — only if the dot is followed by a digit, so ranges
    // (`0..n`) and method calls on literals (`1.max(2)`) stay intact.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        text.push('.');
        cur.bump();
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let sign = matches!(cur.peek(1), Some('+' | '-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            text.push(cur.bump().unwrap_or('e'));
            if sign {
                text.push(cur.bump().unwrap_or('+'));
            }
            while let Some(c) = cur.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (`1.0f32`, `42u64`, `1_f64`).
    let mut suffix = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            suffix.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix.contains("f32") || suffix.contains("f64") {
        is_float = true;
    }
    text.push_str(&suffix);
    let kind = if is_float {
        TokenKind::Float
    } else {
        TokenKind::Int
    };
    (kind, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let lexed = lex("let x = 1; // trailing .unwrap()\n/* block\npanic! */ let y = 2;");
        assert!(lexed.tokens.iter().all(|t| t.text != "unwrap"));
        assert!(lexed.tokens.iter().all(|t| t.text != "panic"));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[1].end_line, 3);
        assert!(lexed.comments[1].text.contains("panic!"));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ fn x() {}");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("still")));
    }

    #[test]
    fn strings_hide_their_contents() {
        let lexed = lex(r#"let s = ".unwrap() panic!"; s.len();"#);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("len")));
        // Escaped quote does not end the string early.
        let lexed = lex(r#"let s = "a\"b.unwrap()"; x"#);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex(r###"let s = r#"contains "quotes" and .unwrap()"#; y"###);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn raw_strings_without_hashes_have_no_escapes() {
        // In `r"\"` the backslash is literal and the string ends at the
        // quote; an escape-aware scan would swallow the rest of the file.
        let lexed = lex("let s = r\"\\\"; tail.unwrap()");
        assert!(
            lexed.tokens.iter().any(|t| t.is_ident("unwrap")),
            "{:?}",
            lexed.tokens
        );
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string token");
        assert_eq!(s.text, "r\"\\\"");
        // Windows-path flavor: `r"C:\dir\"` ends at the final quote.
        let lexed = lex("let p = r\"C:\\dir\\\"; after");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("after")));
        // Byte strings keep escape processing: `b"\""` is one literal.
        let lexed = lex("let b = b\"\\\"\"; done");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("done")));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_multiple_hashes() {
        // `r##"…"#…"##` only closes on a quote followed by BOTH hashes.
        let src = "let s = r##\"inner \"# not the end .unwrap()\"##; y";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("y")));
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string token");
        assert!(s.text.starts_with("r##\"") && s.text.ends_with("\"##"));
    }

    #[test]
    fn deeply_nested_block_comments_balance_by_depth() {
        // Two levels of nesting plus code on both sides; the first `*/`
        // closes only the inner comment.
        let src = "before /* a /* b /* c */ b2 */ a2 */ after";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("before")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("after")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("b2")));
        assert_eq!(lexed.comments.len(), 1);
        // An unterminated nested comment consumes the remainder (forgiving
        // mid-edit behavior) instead of resurfacing as tokens.
        let lexed = lex("x /* outer /* inner */ still open\nunwrap()");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn lifetime_vs_char_ambiguity_in_generics() {
        // `<'a>` and `&'a` are lifetimes; `'a'` is a char even when the
        // same letter is in scope as a lifetime on the same line.
        let toks = kinds("fn f<'a>(x: &'a str) -> char { let c: char = 'a'; c }");
        let lifetimes: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(chars, ["'a'"]);
        // `'static` never closes; an escaped quote char `'\''` does.
        let toks = kinds("fn g(x: &'static str) { let q = '\\''; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'static".to_string())));
        assert!(toks.contains(&(TokenKind::Char, "'\\''".to_string())));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "type".to_string())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn char_literal_with_punctuation() {
        let toks = kinds("let c = ','; let q = '\"'; done");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
        assert!(toks.contains(&(TokenKind::Ident, "done".to_string())));
    }

    #[test]
    fn floats_vs_ranges_vs_ints() {
        let toks = kinds("for i in 0..10 { let x = 1.5; let y = 2e-3; let z = 4f64; let n = 7; }");
        let floats: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(floats, ["1.5", "2e-3", "4f64"]);
        assert!(toks.contains(&(TokenKind::Punct, "..".to_string())));
        assert!(toks.contains(&(TokenKind::Int, "7".to_string())));
        assert!(toks.contains(&(TokenKind::Int, "0".to_string())));
    }

    #[test]
    fn hex_is_int_even_with_e_digits() {
        let toks = kinds("let m = 0xFE; let b = 0b10_01; x");
        assert!(toks.contains(&(TokenKind::Int, "0xFE".to_string())));
        assert!(toks.contains(&(TokenKind::Int, "0b10_01".to_string())));
    }

    #[test]
    fn multichar_punctuation_and_generics() {
        let toks = kinds("if a == b && c != d { v: Vec<Vec<u32>> = w; } x ..= y");
        assert!(toks.contains(&(TokenKind::Punct, "==".to_string())));
        assert!(toks.contains(&(TokenKind::Punct, "!=".to_string())));
        assert!(toks.contains(&(TokenKind::Punct, "&&".to_string())));
        assert!(toks.contains(&(TokenKind::Punct, "..=".to_string())));
        // Nested generics close with a shift token; the lexer must not lose
        // the following identifier.
        assert!(toks.contains(&(TokenKind::Punct, ">>".to_string())));
    }

    #[test]
    fn positions_are_line_and_col_exact() {
        let lexed = lex("let a = 1;\n  foo.unwrap();\n");
        let unwrap = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
    }

    #[test]
    fn method_call_on_float_literal() {
        // `2.0_f64.ln()` must lex as Float("2.0_f64") '.' Ident(ln).
        let toks = kinds("let x = 2.0_f64.ln();");
        assert!(toks.contains(&(TokenKind::Float, "2.0_f64".to_string())));
        assert!(toks.contains(&(TokenKind::Ident, "ln".to_string())));
    }

    #[test]
    fn unterminated_string_consumes_rest() {
        let lexed = lex("let s = \"oops\nunwrap()");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn byte_strings() {
        let lexed = lex(r#"let b = b"panic!"; z"#);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("z")));
    }
}
