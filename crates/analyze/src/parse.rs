//! A lightweight recursive-descent pass over the lexer's token stream.
//!
//! This is deliberately **not** a Rust parser. It recovers just enough
//! structure for the semantic rules in [`crate::sema`]:
//!
//! - `use` declarations, with nested groups (`use a::{b, c as d, self}`)
//!   expanded into flat local-name → canonical-path bindings;
//! - `fn` items (free functions, methods inside `impl`/`mod`/`trait`
//!   blocks, nested fns), each with its name, the token range of its
//!   parameter list and the token range of its body;
//! - balanced-delimiter matching, shared via [`match_forward`].
//!
//! Everything else — expressions, types, generics — stays a token stream;
//! [`crate::sema`] runs targeted scans inside the recovered ranges. The
//! pass is error-tolerant: malformed or mid-edit code degrades to "no item
//! recognized here", never to a panic or a skipped file.

use crate::lexer::Token;

/// One local name introduced by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBinding {
    /// The identifier visible in this file (the alias, for `as` imports).
    pub name: String,
    /// Canonical `::`-joined path the name resolves to.
    pub path: String,
}

/// One `fn` item: name plus the token ranges semantic scans operate on.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the parameter list, *excluding* the outer
    /// parentheses: `params.0..params.1`.
    pub params: (usize, usize),
    /// Token index range of the return type / where clause: everything
    /// between the closing `)` and the body `{` (or terminating `;`).
    pub ret: (usize, usize),
    /// Token index range of the body, *excluding* the outer braces:
    /// `body.0..body.1`. Empty for bodyless trait-method declarations.
    pub body: (usize, usize),
}

/// The recovered item-level structure of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Flattened `use` bindings in declaration order.
    pub uses: Vec<UseBinding>,
    /// Every `fn` item in source order (nested fns appear after their
    /// enclosing fn; their body ranges nest inside it).
    pub fns: Vec<FnItem>,
}

/// Index of the token matching the opening delimiter at `open` (`(`, `[`,
/// or `{`), or `tokens.len()` when unbalanced. Counts only the same
/// delimiter family, so `f(g(x)[1])` resolves correctly.
pub fn match_forward(tokens: &[Token], open: usize) -> usize {
    let (open_s, close_s) = match tokens.get(open).map(|t| t.text.as_str()) {
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        Some("{") => ("{", "}"),
        _ => return tokens.len(),
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_s) {
            depth += 1;
        } else if t.is_punct(close_s) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Parses the token stream into items. Single forward scan; `use` trees
/// and `fn` signatures are parsed in place, all other tokens are skipped.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("use") {
            i = parse_use(tokens, i + 1, &mut out.uses);
        } else if t.is_ident("fn") {
            i = parse_fn(tokens, i, &mut out.fns);
        } else {
            i += 1;
        }
    }
    out
}

/// Parses one `use` declaration starting just after the `use` keyword;
/// returns the index after its terminating `;` (or wherever recovery
/// stopped). Groups recurse; globs (`*`) bind nothing.
fn parse_use(tokens: &[Token], mut i: usize, uses: &mut Vec<UseBinding>) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    i = parse_use_tree(tokens, i, &mut prefix, uses);
    // Skip to the terminating `;` in case recovery bailed mid-tree.
    while i < tokens.len() && !tokens[i].is_punct(";") {
        i += 1;
    }
    i + 1
}

/// Parses one use-tree node (path segment sequence, optionally ending in a
/// group, a glob, or an `as` alias) and returns the index where it stopped.
fn parse_use_tree(
    tokens: &[Token],
    mut i: usize,
    prefix: &mut Vec<String>,
    uses: &mut Vec<UseBinding>,
) -> usize {
    let depth_at_entry = prefix.len();
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            // Group: parse comma-separated subtrees until the closing brace.
            let close = match_forward(tokens, i);
            i += 1;
            while i < close {
                i = parse_use_tree(tokens, i, prefix, uses);
                if i < close && tokens[i].is_punct(",") {
                    i += 1;
                }
            }
            prefix.truncate(depth_at_entry);
            return close + 1;
        }
        if t.is_punct("*") {
            // Glob import: nothing nameable to bind.
            prefix.truncate(depth_at_entry);
            return i + 1;
        }
        if t.kind == crate::lexer::TokenKind::Ident && t.text != "as" {
            if t.text == "self" {
                // `self` binds the enclosing segment's name.
                if let Some(last) = prefix.last().cloned() {
                    bind(uses, last, prefix);
                }
                prefix.truncate(depth_at_entry);
                return i + 1;
            }
            prefix.push(t.text.clone());
            match tokens.get(i + 1) {
                Some(n) if n.is_punct("::") => {
                    i += 2;
                    continue;
                }
                Some(n) if n.is_ident("as") => {
                    // Alias: the *local* name differs from the path tail.
                    if let Some(alias) = tokens.get(i + 2) {
                        bind(uses, alias.text.clone(), prefix);
                    }
                    prefix.truncate(depth_at_entry);
                    return i + 3;
                }
                _ => {
                    bind(uses, t.text.clone(), prefix);
                    prefix.truncate(depth_at_entry);
                    return i + 1;
                }
            }
        }
        // Anything else (`;`, `,`, `}`) ends this subtree.
        prefix.truncate(depth_at_entry);
        return i;
    }
    prefix.truncate(depth_at_entry);
    i
}

fn bind(uses: &mut Vec<UseBinding>, name: String, path: &[String]) {
    uses.push(UseBinding {
        name,
        path: path.join("::"),
    });
}

/// Parses one `fn` item starting at the `fn` keyword; returns the index
/// after the signature (NOT after the body — the main scan continues into
/// the body so nested fns are found too).
fn parse_fn(tokens: &[Token], at: usize, fns: &mut Vec<FnItem>) -> usize {
    let Some(name_tok) = tokens.get(at + 1) else {
        return at + 1;
    };
    if name_tok.kind != crate::lexer::TokenKind::Ident {
        // `fn` as part of `Fn(..)` trait sugar or a bare fn-pointer type.
        return at + 1;
    }
    // Find the parameter list: the first `(` before any `{` or `;`
    // (generic params `<…>` may intervene but contain no parens).
    let mut i = at + 2;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("(") {
            break;
        }
        if t.is_punct("{") || t.is_punct(";") {
            return at + 1; // malformed; resume after the keyword
        }
        i += 1;
    }
    if i >= tokens.len() {
        return at + 1;
    }
    let params_close = match_forward(tokens, i);
    let params = (i + 1, params_close.min(tokens.len()));
    // Find the body `{` (skipping the return type / where clause) or a `;`
    // for bodyless declarations. Bracket generics like `-> Vec<[u8; 4]>`
    // contain `;` inside `[]`, so track square-bracket depth.
    let mut j = params_close + 1;
    let mut sq_depth = 0usize;
    let (ret_end, body) = loop {
        match tokens.get(j) {
            None => break (tokens.len(), (tokens.len(), tokens.len())),
            Some(t) if t.is_punct("[") => sq_depth += 1,
            Some(t) if t.is_punct("]") => sq_depth = sq_depth.saturating_sub(1),
            Some(t) if t.is_punct(";") && sq_depth == 0 => break (j, (j, j)),
            Some(t) if t.is_punct("{") => {
                let close = match_forward(tokens, j);
                break (j, (j + 1, close.min(tokens.len())));
            }
            Some(_) => {}
        }
        j += 1;
    };
    fns.push(FnItem {
        name: name_tok.text.clone(),
        line: tokens[at].line,
        params,
        ret: (params_close + 1, ret_end),
        body,
    });
    // Continue scanning from the params so nested fns inside the body are
    // picked up by the caller's loop.
    params.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex(src).tokens)
    }

    fn use_pairs(src: &str) -> Vec<(String, String)> {
        parsed(src)
            .uses
            .into_iter()
            .map(|u| (u.name, u.path))
            .collect()
    }

    #[test]
    fn plain_and_aliased_uses() {
        assert_eq!(
            use_pairs("use std::collections::HashMap;"),
            vec![("HashMap".into(), "std::collections::HashMap".into())]
        );
        assert_eq!(
            use_pairs("use std::collections::HashMap as Map;"),
            vec![("Map".into(), "std::collections::HashMap".into())]
        );
    }

    #[test]
    fn grouped_and_nested_uses() {
        assert_eq!(
            use_pairs("use std::collections::{HashMap, HashSet as Set, btree_map::{self, Entry}};"),
            vec![
                ("HashMap".into(), "std::collections::HashMap".into()),
                ("Set".into(), "std::collections::HashSet".into()),
                ("btree_map".into(), "std::collections::btree_map".into()),
                ("Entry".into(), "std::collections::btree_map::Entry".into()),
            ]
        );
    }

    #[test]
    fn glob_binds_nothing_and_recovery_reaches_next_item() {
        let pairs = use_pairs("use std::collections::*;\nuse std::fmt;\n");
        assert_eq!(pairs, vec![("fmt".into(), "std::fmt".into())]);
    }

    #[test]
    fn fn_items_with_params_and_body_ranges() {
        let src = "pub fn add(a: u32, b: u32) -> u32 { a + b }\nfn empty() {}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "add");
        assert_eq!(p.fns[1].name, "empty");
        // The body range of `add` covers `a + b`.
        let toks = lex(src).tokens;
        let body: Vec<&str> = toks[p.fns[0].body.0..p.fns[0].body.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, ["a", "+", "b"]);
        // `empty`'s body is empty but well-formed.
        assert_eq!(p.fns[1].body.0, p.fns[1].body.1);
    }

    #[test]
    fn methods_in_impl_blocks_and_nested_fns() {
        let src = "impl Foo {\n  fn outer(&self) { fn inner(x: u8) -> u8 { x } inner(1); }\n}\n";
        let p = parsed(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        // inner's body nests inside outer's.
        assert!(p.fns[1].body.0 > p.fns[0].body.0);
        assert!(p.fns[1].body.1 <= p.fns[0].body.1);
    }

    #[test]
    fn trait_method_declarations_have_empty_bodies() {
        let src = "trait T { fn required(&self, n: usize) -> bool; fn provided(&self) {} }";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "required");
        assert_eq!(p.fns[0].body.0, p.fns[0].body.1);
        assert_eq!(p.fns[1].name, "provided");
    }

    #[test]
    fn generic_fn_and_where_clause() {
        let src = "fn f<T: Ord>(items: &[T]) -> Option<&T> where T: Clone { items.first() }";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        let toks = lex(src).tokens;
        let body: Vec<&str> = toks[p.fns[0].body.0..p.fns[0].body.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, ["items", ".", "first", "(", ")"]);
    }

    #[test]
    fn fn_trait_sugar_is_not_an_item() {
        let p = parsed("fn apply(f: impl Fn(u32) -> u32) -> u32 { f(1) }");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "apply");
    }

    #[test]
    fn match_forward_balances_same_family_only() {
        let toks = lex("f(g(x)[1])").tokens;
        // tokens: f ( g ( x ) [ 1 ] )
        assert_eq!(match_forward(&toks, 1), 9);
        assert_eq!(match_forward(&toks, 3), 5);
        assert_eq!(match_forward(&toks, 6), 8);
        // Unbalanced input degrades to len, not a panic.
        let toks = lex("f(x").tokens;
        assert_eq!(match_forward(&toks, 1), toks.len());
    }

    #[test]
    fn malformed_input_recovers() {
        // `fn` with no name, unterminated use — nothing recognized, no panic.
        let p = parsed("use ::;\nfn (x) {}\nfn ok() {}");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "ok");
    }
}
