//! Scan reports: aggregation plus the text and deterministic-JSON renderers
//! shared by the `fdx-analyze` binary and the `fdx lint` subcommand.

use std::fmt::Write as _;

use crate::baseline::RatchetOutcome;
use crate::diag::{Diagnostic, RuleId, Severity};
use crate::json::write_escaped;

/// Result of ratcheting a scan against the committed baseline.
#[derive(Debug, Clone)]
pub struct RatchetResult {
    /// Total violations recorded in the baseline.
    pub baseline_total: u64,
    /// Total active violations in the current scan.
    pub current_total: u64,
    /// Bucket-level regressions and stale entries.
    pub outcome: RatchetOutcome,
}

/// A full scan: every diagnostic (active and suppressed), sorted by
/// position, plus the optional ratchet comparison.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All diagnostics in (path, line, col, rule) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Present when the scan ran in `--ratchet` mode.
    pub ratchet: Option<RatchetResult>,
}

impl ScanReport {
    /// Diagnostics not silenced by an `fdx-allow` comment.
    pub fn active(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.suppressed.is_none())
    }

    /// Diagnostics silenced by an `fdx-allow` comment (the audit trail).
    pub fn suppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.suppressed.is_some())
    }

    /// Active error-severity count.
    pub fn error_count(&self) -> usize {
        self.active()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Active warning-severity count.
    pub fn warning_count(&self) -> usize {
        self.active()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether this run should exit non-zero. In ratchet mode only new
    /// violations fail; in plain mode any active error does.
    pub fn failed(&self) -> bool {
        match &self.ratchet {
            Some(r) => !r.outcome.passed(),
            None => self.error_count() > 0,
        }
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in self.active() {
            let _ = writeln!(out, "{d}");
        }
        let suppressed: Vec<&Diagnostic> = self.suppressed().collect();
        if !suppressed.is_empty() {
            let _ = writeln!(out, "\nsuppressed (fdx-allow audit):");
            // Grouped by rule with counts so the audit reads as a waiver
            // budget per invariant, not an undifferentiated list.
            for rule in RuleId::ALL {
                let group: Vec<&&Diagnostic> =
                    suppressed.iter().filter(|d| d.rule == rule).collect();
                if group.is_empty() {
                    continue;
                }
                let _ = writeln!(out, "  {} ({} waived):", rule.code(), group.len());
                for d in group {
                    let reason = d.suppressed.as_deref().unwrap_or("");
                    let reason = if reason.is_empty() {
                        "(no reason given)"
                    } else {
                        reason
                    };
                    let _ = writeln!(out, "    {}:{}:{} — {}", d.path, d.line, d.col, reason);
                }
            }
        }
        let _ = writeln!(
            out,
            "\n{} files scanned: {} errors, {} warnings, {} suppressed",
            self.files_scanned,
            self.error_count(),
            self.warning_count(),
            suppressed.len()
        );
        if let Some(r) = &self.ratchet {
            let _ = writeln!(
                out,
                "ratchet: baseline {} -> current {}",
                r.baseline_total, r.current_total
            );
            for d in &r.outcome.regressions {
                let _ = writeln!(
                    out,
                    "  NEW {} {} ({} -> {})",
                    d.rule.code(),
                    d.path,
                    d.baseline,
                    d.current
                );
            }
            for d in &r.outcome.stale {
                let _ = writeln!(
                    out,
                    "  stale baseline entry {} {} ({} -> {}); re-run with --write-baseline",
                    d.rule.code(),
                    d.path,
                    d.baseline,
                    d.current
                );
            }
            let _ = writeln!(
                out,
                "ratchet {}",
                if r.outcome.passed() { "PASS" } else { "FAIL" }
            );
        }
        out
    }

    /// Deterministic JSON report (stable key order, sorted arrays,
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(
            out,
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"suppressed\": {}}},",
            self.error_count(),
            self.warning_count(),
            self.suppressed().count()
        );
        out.push_str("  \"diagnostics\": [");
        let active: Vec<&Diagnostic> = self.active().collect();
        for (i, d) in active.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_diag(&mut out, d);
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"suppressed\": [");
        let suppressed: Vec<&Diagnostic> = self.suppressed().collect();
        for (i, d) in suppressed.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_diag(&mut out, d);
        }
        out.push_str("\n  ]");
        if let Some(r) = &self.ratchet {
            out.push_str(",\n  \"ratchet\": {\n");
            let _ = writeln!(
                out,
                "    \"passed\": {},",
                if r.outcome.passed() { "true" } else { "false" }
            );
            let _ = writeln!(out, "    \"baseline_total\": {},", r.baseline_total);
            let _ = writeln!(out, "    \"current_total\": {},", r.current_total);
            write_deltas(&mut out, "regressions", &r.outcome.regressions);
            out.push_str(",\n");
            write_deltas(&mut out, "stale", &r.outcome.stale);
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }
}

fn write_diag(out: &mut String, d: &Diagnostic) {
    out.push_str("{\"rule\": ");
    write_escaped(out, d.rule.code());
    out.push_str(", \"path\": ");
    write_escaped(out, &d.path);
    let _ = write!(
        out,
        ", \"line\": {}, \"col\": {}, \"severity\": ",
        d.line, d.col
    );
    write_escaped(out, d.severity.label());
    out.push_str(", \"snippet\": ");
    write_escaped(out, &d.snippet);
    if let Some(reason) = &d.suppressed {
        out.push_str(", \"reason\": ");
        write_escaped(out, reason);
    }
    out.push('}');
}

fn write_deltas(out: &mut String, key: &str, deltas: &[crate::baseline::Delta]) {
    let _ = write!(out, "    \"{key}\": [");
    for (i, d) in deltas.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("      {\"rule\": ");
        write_escaped(out, d.rule.code());
        out.push_str(", \"path\": ");
        write_escaped(out, &d.path);
        let _ = write!(
            out,
            ", \"baseline\": {}, \"current\": {}}}",
            d.baseline, d.current
        );
    }
    if !deltas.is_empty() {
        out.push_str("\n    ");
    }
    out.push(']');
}

/// Renders the `--list-rules` table.
pub fn list_rules() -> String {
    let mut out = String::new();
    for r in RuleId::ALL {
        let _ = writeln!(
            out,
            "{}  [{}]  {}",
            r.code(),
            r.severity().label(),
            r.summary()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Delta;
    use crate::json;

    fn diag(rule: RuleId, path: &str, line: u32, suppressed: Option<&str>) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            col: 3,
            snippet: "let x = y.unwrap();".to_string(),
            severity: rule.severity(),
            suppressed: suppressed.map(str::to_string),
        }
    }

    fn sample() -> ScanReport {
        ScanReport {
            files_scanned: 4,
            diagnostics: vec![
                diag(RuleId::L001, "crates/a/src/lib.rs", 10, None),
                diag(RuleId::L005, "crates/b/src/lib.rs", 20, None),
                diag(
                    RuleId::L002,
                    "crates/c/src/lib.rs",
                    30,
                    Some("exact sparsity guard"),
                ),
            ],
            ratchet: None,
        }
    }

    #[test]
    fn counts_split_by_severity_and_suppression() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.suppressed().count(), 1);
        assert!(r.failed()); // plain mode: one active error
    }

    #[test]
    fn ratchet_mode_overrides_plain_failure() {
        let mut r = sample();
        r.ratchet = Some(RatchetResult {
            baseline_total: 2,
            current_total: 2,
            outcome: RatchetOutcome::default(),
        });
        assert!(!r.failed()); // violations exist but are all baselined
    }

    #[test]
    fn text_report_has_audit_section_and_summary() {
        let text = sample().to_text();
        assert!(text.contains("FDX-L001"));
        assert!(text.contains("suppressed (fdx-allow audit):"));
        // The audit is grouped by rule with a waiver count.
        assert!(text.contains("FDX-L002 (1 waived):"));
        assert!(text.contains("exact sparsity guard"));
        assert!(text.contains("4 files scanned: 1 errors, 1 warnings, 1 suppressed"));
    }

    #[test]
    fn json_report_parses_and_is_deterministic() {
        let mut r = sample();
        r.ratchet = Some(RatchetResult {
            baseline_total: 3,
            current_total: 2,
            outcome: RatchetOutcome {
                regressions: vec![Delta {
                    rule: RuleId::L001,
                    path: "crates/a/src/lib.rs".into(),
                    baseline: 0,
                    current: 1,
                }],
                stale: vec![Delta {
                    rule: RuleId::L004,
                    path: "crates/z/src/lib.rs".into(),
                    baseline: 2,
                    current: 0,
                }],
            },
        });
        let j = r.to_json();
        assert_eq!(j, r.to_json()); // byte-identical across calls
        let v = json::parse(&j).expect("valid JSON");
        assert_eq!(
            v.get("summary")
                .and_then(|s| s.get("errors"))
                .and_then(json::Value::as_u64),
            Some(1)
        );
        let diags = v.get("diagnostics").and_then(json::Value::as_arr).unwrap();
        assert_eq!(diags.len(), 2); // suppressed entry lives in its own array
        let sup = v.get("suppressed").and_then(json::Value::as_arr).unwrap();
        assert_eq!(sup.len(), 1);
        assert_eq!(
            sup[0].get("reason").and_then(json::Value::as_str),
            Some("exact sparsity guard")
        );
        let ratchet = v.get("ratchet").unwrap();
        assert_eq!(
            ratchet.get("passed").cloned(),
            Some(json::Value::Bool(false))
        );
        assert_eq!(
            ratchet
                .get("regressions")
                .and_then(json::Value::as_arr)
                .map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn list_rules_covers_all() {
        let text = list_rules();
        for r in RuleId::ALL {
            assert!(text.contains(r.code()));
        }
    }
}
