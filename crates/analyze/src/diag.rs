//! Diagnostic model shared by every rule: id, severity, position, snippet,
//! and the `fdx-allow` suppression audit trail.

use std::fmt;

/// Stable rule identifiers. The numeric short form (`L001`) is what
/// suppression comments use; [`RuleId::code`] is the full reported code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `.unwrap()` / `.expect()` in library code.
    L001,
    /// Raw float `==` / `!=` comparison.
    L002,
    /// `Instant::now()` outside the observability crate.
    L003,
    /// `panic!` / `todo!` / `unimplemented!` in library code.
    L004,
    /// Lossy `as` cast in a numerical kernel crate.
    L005,
    /// `unsafe` without a `// SAFETY:` comment.
    L006,
    /// `catch_unwind` outside the panic-isolation boundary crates.
    L007,
    /// `fdx.*` metric name not in the canonical registry constant.
    L008,
    /// `HashMap`/`HashSet` iteration order reaching results unsorted.
    L009,
    /// Atomic-ordering audit: `Relaxed` read-modify-write / any `SeqCst`.
    L010,
    /// Thread creation outside the parallel-runtime boundary crates.
    L011,
    /// Float reduction over a hash-ordered source in a kernel crate.
    L012,
    /// Wall-clock (`SystemTime::now`) or env-dependent result paths.
    L013,
    /// `fdx-allow` suppression without a reason string.
    L014,
    /// Persistent file write bypassing `fdx_obs::write_atomic`.
    L015,
}

impl RuleId {
    /// All rules, in reporting order.
    pub const ALL: [RuleId; 15] = [
        RuleId::L001,
        RuleId::L002,
        RuleId::L003,
        RuleId::L004,
        RuleId::L005,
        RuleId::L006,
        RuleId::L007,
        RuleId::L008,
        RuleId::L009,
        RuleId::L010,
        RuleId::L011,
        RuleId::L012,
        RuleId::L013,
        RuleId::L014,
        RuleId::L015,
    ];

    /// Full reported code, e.g. `FDX-L001`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::L001 => "FDX-L001",
            RuleId::L002 => "FDX-L002",
            RuleId::L003 => "FDX-L003",
            RuleId::L004 => "FDX-L004",
            RuleId::L005 => "FDX-L005",
            RuleId::L006 => "FDX-L006",
            RuleId::L007 => "FDX-L007",
            RuleId::L008 => "FDX-L008",
            RuleId::L009 => "FDX-L009",
            RuleId::L010 => "FDX-L010",
            RuleId::L011 => "FDX-L011",
            RuleId::L012 => "FDX-L012",
            RuleId::L013 => "FDX-L013",
            RuleId::L014 => "FDX-L014",
            RuleId::L015 => "FDX-L015",
        }
    }

    /// Short form accepted in `fdx-allow:` comments, e.g. `L001`.
    pub fn short(self) -> &'static str {
        match self {
            RuleId::L001 => "L001",
            RuleId::L002 => "L002",
            RuleId::L003 => "L003",
            RuleId::L004 => "L004",
            RuleId::L005 => "L005",
            RuleId::L006 => "L006",
            RuleId::L007 => "L007",
            RuleId::L008 => "L008",
            RuleId::L009 => "L009",
            RuleId::L010 => "L010",
            RuleId::L011 => "L011",
            RuleId::L012 => "L012",
            RuleId::L013 => "L013",
            RuleId::L014 => "L014",
            RuleId::L015 => "L015",
        }
    }

    /// Parses `L001` or `FDX-L001` (case-insensitive).
    pub fn parse(s: &str) -> Option<RuleId> {
        let s = s.trim();
        let s = s
            .strip_prefix("FDX-")
            .or_else(|| s.strip_prefix("fdx-"))
            .unwrap_or(s);
        RuleId::ALL
            .into_iter()
            .find(|r| r.short().eq_ignore_ascii_case(s))
    }

    /// Severity of violations of this rule.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::L005 | RuleId::L010 => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line human description of what the rule protects.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::L001 => "`.unwrap()`/`.expect()` in library code",
            RuleId::L002 => "raw float `==`/`!=` comparison (use a tolerance helper)",
            RuleId::L003 => "`Instant::now()` outside crates/obs (use obs spans)",
            RuleId::L004 => "`panic!`/`todo!`/`unimplemented!` in library code",
            RuleId::L005 => "lossy `as` cast in a numerical kernel crate",
            RuleId::L006 => "`unsafe` without a `// SAFETY:` comment",
            RuleId::L007 => "`catch_unwind` outside crates/serve and crates/par (panic containment stays at the isolation boundary)",
            RuleId::L008 => "`fdx.*` metric name not listed in crates/obs/src/metrics.rs (METRIC_NAMES is the canonical registry)",
            RuleId::L009 => "`HashMap`/`HashSet` iteration reaching results without a sort (use `BTreeMap`/`BTreeSet` or collect-then-sort)",
            RuleId::L010 => "atomic-ordering audit: `Ordering::Relaxed` on a read-modify-write outside crates/obs, or any `SeqCst`",
            RuleId::L011 => "thread creation (`thread::spawn`/`Builder`/`scope`) outside crates/par and crates/serve",
            RuleId::L012 => "float reduction over a hash-ordered source in a linalg/glasso/stats kernel (order-dependent rounding)",
            RuleId::L013 => "`SystemTime::now()` or env-var reads in result paths (outside crates/par and crates/bench)",
            RuleId::L014 => "`fdx-allow` suppression without a reason string (every waiver must say why)",
            RuleId::L015 => "persistent file write (`fs::write`/`File::create`/`OpenOptions`) in library code bypassing `fdx_obs::write_atomic` (a kill mid-write must never leave a torn file)",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Ratcheted hard: new instances fail CI.
    Error,
    /// Ratcheted too, but reported as a warning.
    Warning,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding: rule, position, and the offending source line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Severity (derived from the rule, stored for rendering).
    pub severity: Severity,
    /// `Some(reason)` when an `fdx-allow` comment suppressed this finding.
    pub suppressed: Option<String>,
}

impl Diagnostic {
    /// Deterministic sort key: path, line, col, rule.
    pub fn sort_key(&self) -> (String, u32, u32, RuleId) {
        (self.path.clone(), self.line, self.col, self.rule)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}: `{}`",
            self.path,
            self.line,
            self.col,
            self.rule.code(),
            self.severity.label(),
            self.rule.summary(),
            self.snippet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_roundtrip_through_parse() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.short()), Some(r));
            assert_eq!(RuleId::parse(r.code()), Some(r));
            assert_eq!(RuleId::parse(&r.short().to_lowercase()), Some(r));
        }
        assert_eq!(RuleId::parse("L999"), None);
        assert_eq!(RuleId::parse(""), None);
    }

    #[test]
    fn severities() {
        assert_eq!(RuleId::L001.severity(), Severity::Error);
        assert_eq!(RuleId::L005.severity(), Severity::Warning);
        assert_eq!(Severity::Warning.label(), "warning");
    }
}
