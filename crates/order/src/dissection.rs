use crate::graph::SupportGraph;
use crate::mindeg::min_degree_weighted;

/// Recursive nested-dissection elimination ordering.
///
/// Each connected component is split by a BFS level-set separator (grown
/// from a pseudo-peripheral vertex): the two halves are ordered recursively
/// and the separator vertices are eliminated *last*, which is the defining
/// property of nested dissection.
///
/// `leaf_size` controls when recursion stops: subgraphs at or below this
/// size are ordered by minimum degree. `leaf_size = 1` mimics a pure
/// METIS-style dissection; a larger leaf (e.g. 8) mimics CHOLMOD's NESDIS,
/// which switches to a local ordering on small pieces.
pub fn nested_dissection(
    graph: &SupportGraph,
    leaf_size: usize,
    weights: Option<&[f64]>,
) -> Vec<usize> {
    let mut order = Vec::with_capacity(graph.len());
    for comp in graph.components() {
        dissect_component(graph, &comp, leaf_size.max(1), weights, &mut order);
    }
    order
}

/// Projects global tie-break weights onto an induced vertex subset.
fn local_weights(weights: Option<&[f64]>, vertices: &[usize]) -> Option<Vec<f64>> {
    weights.map(|w| vertices.iter().map(|&v| w[v]).collect())
}

fn dissect_component(
    graph: &SupportGraph,
    vertices: &[usize],
    leaf_size: usize,
    weights: Option<&[f64]>,
    order: &mut Vec<usize>,
) {
    if vertices.len() <= leaf_size || vertices.len() <= 2 {
        // Local ordering on the leaf via minimum degree on the induced graph.
        let sub = graph.induced(vertices);
        let lw = local_weights(weights, vertices);
        for local in min_degree_weighted(&sub, false, lw.as_deref()) {
            order.push(vertices[local]);
        }
        return;
    }
    let sub = graph.induced(vertices);
    let (left, right, sep) = bfs_separator(&sub);
    if sep.is_empty() || left.is_empty() || right.is_empty() {
        // Separator failed to split (e.g. complete graph): fall back.
        let lw = local_weights(weights, vertices);
        for local in min_degree_weighted(&sub, false, lw.as_deref()) {
            order.push(vertices[local]);
        }
        return;
    }
    let to_global = |locals: &[usize]| locals.iter().map(|&l| vertices[l]).collect::<Vec<_>>();
    dissect_component(graph, &to_global(&left), leaf_size, weights, order);
    dissect_component(graph, &to_global(&right), leaf_size, weights, order);
    // Separator last: it borders both halves.
    for &l in &sep {
        order.push(vertices[l]);
    }
}

/// Splits a connected graph into (left, right, separator) by BFS levels from
/// a pseudo-peripheral vertex: levels strictly below the median level form
/// the left part, the median level is the separator, the rest the right.
fn bfs_separator(graph: &SupportGraph) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let n = graph.len();
    let start = pseudo_peripheral(graph);
    let levels = bfs_levels(graph, start);
    let max_level = levels.iter().copied().max().unwrap_or(0);
    if max_level == 0 {
        // Complete graph or single vertex: no separator exists.
        return (Vec::new(), Vec::new(), Vec::new());
    }
    // Pick the level whose cut best balances the halves.
    let mut level_counts = vec![0usize; max_level + 1];
    for &l in &levels {
        level_counts[l] += 1;
    }
    let mut below = 0usize;
    let mut best_level = 1;
    let mut best_balance = usize::MAX;
    for (lvl, &cnt) in level_counts.iter().enumerate().take(max_level) {
        if lvl == 0 {
            below += cnt;
            continue;
        }
        let above = n - below - cnt;
        let balance = below.abs_diff(above);
        if above > 0 && below > 0 && balance < best_balance {
            best_balance = balance;
            best_level = lvl;
        }
        below += cnt;
    }
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut sep = Vec::new();
    for (v, &l) in levels.iter().enumerate() {
        if l < best_level {
            left.push(v);
        } else if l == best_level {
            sep.push(v);
        } else {
            right.push(v);
        }
    }
    (left, right, sep)
}

/// Finds a vertex of (approximately) maximal eccentricity by iterating BFS
/// from the farthest vertex a few times.
fn pseudo_peripheral(graph: &SupportGraph) -> usize {
    let mut v = 0;
    let mut ecc = 0;
    for _ in 0..3 {
        let levels = bfs_levels(graph, v);
        let (far, far_level) = levels
            .iter()
            .enumerate()
            .max_by_key(|&(_, &l)| l)
            .map(|(i, &l)| (i, l))
            .unwrap_or((v, 0));
        if far_level <= ecc {
            break;
        }
        ecc = far_level;
        v = far;
    }
    v
}

fn bfs_levels(graph: &SupportGraph, start: usize) -> Vec<usize> {
    let n = graph.len();
    let mut level = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    level[start] = 0;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for &u in graph.neighbors(v) {
            if level[u] == usize::MAX {
                level[u] = level[v] + 1;
                queue.push_back(u);
            }
        }
    }
    // Unreached vertices (other components) are callers' responsibility; the
    // dissection only runs on connected pieces, but guard anyway.
    for l in &mut level {
        if *l == usize::MAX {
            *l = 0;
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_separator_is_in_the_middle() {
        // Path 0-1-2-3-4: the separator vertex must be ordered last and be
        // an interior vertex.
        let g = SupportGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let order = nested_dissection(&g, 1, None);
        assert_eq!(order.len(), 5);
        let last = *order.last().unwrap();
        assert!(
            (1..=3).contains(&last),
            "separator {last} should be interior"
        );
    }

    #[test]
    fn grid_orders_all_vertices() {
        // 3x3 grid.
        let mut edges = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                let v = r * 3 + c;
                if c + 1 < 3 {
                    edges.push((v, v + 1));
                }
                if r + 1 < 3 {
                    edges.push((v, v + 3));
                }
            }
        }
        let g = SupportGraph::from_edges(9, &edges);
        for leaf in [1, 4, 8] {
            let order = nested_dissection(&g, leaf, None);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..9).collect::<Vec<_>>(), "leaf={leaf}");
        }
    }

    #[test]
    fn complete_graph_falls_back() {
        let g = SupportGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let order = nested_dissection(&g, 1, None);
        let mut sorted = order;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn disconnected_components_all_ordered() {
        let g = SupportGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let order = nested_dissection(&g, 1, None);
        let mut sorted = order;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn pseudo_peripheral_finds_path_end() {
        let g = SupportGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = pseudo_peripheral(&g);
        assert!(p == 0 || p == 4, "got {p}");
    }
}
