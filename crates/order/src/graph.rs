use std::collections::BTreeSet;

use fdx_linalg::Matrix;

/// Undirected support graph of a symmetric matrix: vertices are attributes,
/// and `{i, j}` is an edge iff `|θ_ij| > threshold`.
///
/// Adjacency is stored as sorted sets so elimination updates (which insert
/// fill edges) stay cheap and deterministic.
#[derive(Debug, Clone)]
pub struct SupportGraph {
    adj: Vec<BTreeSet<usize>>,
}

impl SupportGraph {
    /// Builds the support graph of `theta` with the given magnitude
    /// threshold. Only off-diagonal entries contribute edges.
    pub fn from_matrix(theta: &Matrix, threshold: f64) -> SupportGraph {
        let n = theta.rows();
        let mut adj = vec![BTreeSet::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                // Use the max magnitude of the two symmetric entries so tiny
                // asymmetries in an estimate cannot drop an edge.
                let w = theta[(i, j)].abs().max(theta[(j, i)].abs());
                if w > threshold {
                    adj[i].insert(j);
                    adj[j].insert(i);
                }
            }
        }
        SupportGraph { adj }
    }

    /// Builds a graph directly from an edge list (tests and dissection).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> SupportGraph {
        let mut adj = vec![BTreeSet::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n && a != b, "invalid edge ({a},{b})");
            adj[a].insert(b);
            adj[b].insert(a);
        }
        SupportGraph { adj }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Neighbors of vertex `v`, sorted ascending.
    pub fn neighbors(&self, v: usize) -> &BTreeSet<usize> {
        &self.adj[v]
    }

    /// The graph of the squared pattern (`AᵀA`-style): vertices are adjacent
    /// if they are within distance two in the original graph. This is the
    /// pattern COLAMD-style column orderings operate on.
    pub fn squared(&self) -> SupportGraph {
        let n = self.len();
        let mut adj = vec![BTreeSet::new(); n];
        for v in 0..n {
            for &u in &self.adj[v] {
                adj[v].insert(u);
                // Distance-2: u's neighbors share a "row" with v.
                for &w in &self.adj[u] {
                    if w != v {
                        adj[v].insert(w);
                        adj[w].insert(v);
                    }
                }
            }
        }
        SupportGraph { adj }
    }

    /// Connected components as vertex lists (each sorted ascending).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start];
            let mut comp = Vec::new();
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &u in &self.adj[v] {
                    if !seen[u] {
                        seen[u] = true;
                        stack.push(u);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// The induced subgraph on `vertices`, with vertices renumbered to
    /// `0..vertices.len()` in the given order.
    pub fn induced(&self, vertices: &[usize]) -> SupportGraph {
        let mut index = vec![usize::MAX; self.len()];
        for (new, &old) in vertices.iter().enumerate() {
            index[old] = new;
        }
        let mut adj = vec![BTreeSet::new(); vertices.len()];
        for (new, &old) in vertices.iter().enumerate() {
            for &u in &self.adj[old] {
                let nu = index[u];
                if nu != usize::MAX {
                    adj[new].insert(nu);
                }
            }
        }
        SupportGraph { adj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_matrix_thresholds_edges() {
        let mut t = Matrix::identity(3);
        t[(0, 1)] = 0.5;
        t[(1, 0)] = 0.5;
        t[(1, 2)] = 0.05;
        t[(2, 1)] = 0.05;
        let g = SupportGraph::from_matrix(&t, 0.1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 0);
        assert!(g.neighbors(1).contains(&0));
    }

    #[test]
    fn asymmetric_entries_use_max() {
        let mut t = Matrix::identity(2);
        t[(0, 1)] = 0.0;
        t[(1, 0)] = 0.9;
        let g = SupportGraph::from_matrix(&t, 0.1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn squared_connects_distance_two() {
        // Path 0-1-2: squared adds edge 0-2.
        let g = SupportGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let g2 = g.squared();
        assert!(g2.neighbors(0).contains(&2));
        assert!(g2.neighbors(0).contains(&1));
    }

    #[test]
    fn components_split() {
        let g = SupportGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![0, 1]));
        assert!(comps.contains(&vec![2, 3]));
        assert!(comps.contains(&vec![4]));
    }

    #[test]
    fn induced_renumbers() {
        let g = SupportGraph::from_edges(4, &[(0, 2), (2, 3)]);
        let sub = g.induced(&[2, 3, 0]);
        // Vertex 2 → 0, 3 → 1, 0 → 2.
        assert!(sub.neighbors(0).contains(&1));
        assert!(sub.neighbors(0).contains(&2));
        assert_eq!(sub.degree(1), 1);
    }
}
