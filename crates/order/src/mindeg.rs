use std::collections::BTreeSet;

use crate::graph::SupportGraph;

/// Greedy minimum-degree elimination ordering (unweighted tie-breaks).
///
/// See [`min_degree_weighted`]; this variant breaks degree ties toward the
/// larger vertex index only.
pub fn min_degree(graph: &SupportGraph, approximate: bool) -> Vec<usize> {
    min_degree_weighted(graph, approximate, None)
}

/// Greedy minimum-degree elimination ordering.
///
/// Repeatedly eliminates a vertex of minimum degree and connects its
/// remaining neighbors into a clique (the fill the factorization would
/// create). Degree ties break by `weights` when supplied — the vertex with
/// the **larger** weight is eliminated first. FDX passes per-attribute
/// agreement rates here: a frequently-agreeing (low-cardinality, determined)
/// attribute is eliminated before a rarely-agreeing (key-like, determining)
/// one, so keys drift to the front of the final global order. Remaining ties
/// break toward the larger vertex index, which post-reversal preserves the
/// natural schema order.
///
/// With `approximate = true`, degrees of the eliminated vertex's neighbors
/// are not recomputed exactly; instead the Amestoy-style upper bound
/// `d(u) ≤ d_old(u) + |clique| − 1` is maintained and degrees are refreshed
/// lazily only for promising candidates. This trades exactness for speed
/// exactly like AMD does relative to exact minimum degree.
pub fn min_degree_weighted(
    graph: &SupportGraph,
    approximate: bool,
    weights: Option<&[f64]>,
) -> Vec<usize> {
    let n = graph.len();
    let mut adj: Vec<BTreeSet<usize>> = (0..n).map(|v| graph.neighbors(v).clone()).collect();
    let mut eliminated = vec![false; n];
    // Degree estimates (exact when `approximate` is false).
    let mut degree: Vec<usize> = (0..n).map(|v| adj[v].len()).collect();
    let mut order = Vec::with_capacity(n);

    for _ in 0..n {
        // Select the minimum-degree live vertex, refreshing stale estimates
        // lazily in approximate mode.
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if eliminated[v] {
                continue;
            }
            let mut d = degree[v];
            if approximate && d <= best_deg {
                // Refresh only promising candidates.
                d = adj[v].len();
                degree[v] = d;
            }
            let wins_tie = best != usize::MAX
                && d == best_deg
                && match weights {
                    Some(w) => {
                        w[v] > w[best] + 1e-9 || ((w[v] - w[best]).abs() <= 1e-9 && v > best)
                    }
                    None => v > best,
                };
            if d < best_deg || wins_tie {
                best_deg = d;
                best = v;
            }
        }
        debug_assert_ne!(best, usize::MAX);
        let v = best;
        eliminated[v] = true;
        order.push(v);

        // Clique of surviving neighbors.
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for &u in &nbrs {
            adj[u].remove(&v);
        }
        for (a_idx, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[a_idx + 1..] {
                if adj[a].insert(b) {
                    adj[b].insert(a);
                }
            }
        }
        // Update degrees.
        for &u in &nbrs {
            if approximate {
                // Upper bound: previous degree plus potential fill.
                degree[u] = degree[u].saturating_sub(1) + nbrs.len().saturating_sub(1);
            } else {
                degree[u] = adj[u].len();
            }
        }
        adj[v].clear();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_eliminates_leaves_first() {
        // Hub 0 with leaves 1..=4.
        let g = SupportGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let order = min_degree(&g, false);
        // The hub has maximal degree until only one edge remains, so it is
        // eliminated in one of the last two positions (the final pair is a
        // degree tie where either endpoint is a valid choice).
        let hub_pos = order.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= 3, "hub eliminated too early: {order:?}");
        // Degree ties break toward the larger index.
        assert_eq!(&order[..3], &[4, 3, 2]);
    }

    #[test]
    fn path_elimination_has_no_fill_preference_violation() {
        // Path 0-1-2-3: endpoints (degree 1) go first.
        let g = SupportGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let order = min_degree(&g, false);
        assert!(order[0] == 0 || order[0] == 3);
    }

    #[test]
    fn clique_any_order_is_fine() {
        let g = SupportGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let order = min_degree(&g, false);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn fill_edges_are_added() {
        // Star with hub 0: eliminating the hub first would clique the
        // leaves. Force that by checking a graph where the hub has minimum
        // degree: hub 0 with 2 leaves, leaves also joined to an extra chain
        // raising their degree.
        let g =
            SupportGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]);
        // Vertex 0 has degree 2, the rest degree >= 3.
        let order = min_degree(&g, false);
        assert_eq!(order[0], 0);
        // After eliminating 0, vertices 1 and 2 become adjacent (fill), so
        // every later elimination still proceeds without panic and covers
        // all vertices.
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn approximate_matches_exact_on_trees() {
        // On trees, elimination of leaves creates no fill, so the
        // approximate degree bound stays exact.
        let g = SupportGraph::from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        let exact = min_degree(&g, false);
        let approx = min_degree(&g, true);
        // The exact order eliminates every leaf before its internal parent;
        // the approximate order is only guaranteed to be a valid elimination
        // sequence that starts from minimum-degree vertices (degree ties
        // later on may interleave survivors, exactly as AMD may).
        let pos = |order: &[usize], v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(&exact, 3) < pos(&exact, 1), "{exact:?}");
        assert!(pos(&exact, 4) < pos(&exact, 1), "{exact:?}");
        assert!(pos(&exact, 5) < pos(&exact, 2), "{exact:?}");
        for order in [&exact, &approx] {
            // Starts at a degree-1 leaf.
            assert!([3, 4, 5, 6].contains(&order[0]), "{order:?}");
            let mut sorted = (*order).clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_graph_orders_by_reverse_index() {
        // All-tie graphs eliminate the largest index first so that the
        // post-reversal global order matches the natural schema order.
        let g = SupportGraph::from_edges(3, &[]);
        assert_eq!(min_degree(&g, false), vec![2, 1, 0]);
        assert_eq!(min_degree(&g, true), vec![2, 1, 0]);
    }
}
