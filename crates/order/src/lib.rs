//! Column-ordering heuristics for FDX's `Θ = U D Uᵀ` decomposition.
//!
//! The decomposition FDX uses "corresponds to a version of the Cholesky
//! decomposition. There are many common heuristics to determine variable
//! orderings for that decomposition" (paper §5.6.2). The paper evaluates six
//! (Table 9): its default minimum-degree *heuristic*, the *natural* schema
//! order, and the CHOLMOD orderings *amd*, *colamd*, *metis*, *nesdis*. This
//! crate reimplements that family from scratch:
//!
//! * [`OrderingMethod::Natural`] — the schema order as-is,
//! * [`OrderingMethod::MinDegree`] — exact greedy minimum degree with
//!   clique-fill updates (the paper's default "heuristic"),
//! * [`OrderingMethod::Amd`] — approximate minimum degree (Amestoy-style
//!   external-degree bound, cheaper updates),
//! * [`OrderingMethod::Colamd`] — a COLAMD-flavoured ordering computed on
//!   the squared pattern (the `AᵀA` graph),
//! * [`OrderingMethod::NestedDissection`] — BFS-separator recursive
//!   dissection (the METIS stand-in),
//! * [`OrderingMethod::Nesdis`] — nested dissection with minimum-degree
//!   refinement on small leaves (the NESDIS stand-in).
//!
//! ## Orientation convention
//!
//! All methods produce an *elimination order* `e₀, e₁, …` (first-eliminated
//! first). [`compute_order`] converts it to the attribute order consumed by
//! `fdx_linalg::udut`, where the factorization eliminates the **last**
//! coordinate first — so `e₀` is placed at the last position. Under the FDX
//! model this makes heavily-determined attributes (low fill, eliminated
//! early) appear *late* in the global order, where Algorithm 3 can assign
//! them determinant sets.

mod dissection;
mod graph;
mod mindeg;

pub use graph::SupportGraph;
pub use mindeg::{min_degree, min_degree_weighted};

use fdx_linalg::{Matrix, Permutation};

/// The ordering heuristics evaluated in the paper's Table 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingMethod {
    /// Keep the schema order.
    Natural,
    /// Exact greedy minimum degree (the paper's default).
    MinDegree,
    /// Approximate minimum degree.
    Amd,
    /// Column approximate minimum degree on the squared pattern.
    Colamd,
    /// BFS-separator nested dissection (METIS stand-in).
    NestedDissection,
    /// Nested dissection with min-degree leaves (NESDIS stand-in).
    Nesdis,
}

impl OrderingMethod {
    /// All methods, in the column order of the paper's Table 9.
    pub const ALL: [OrderingMethod; 6] = [
        OrderingMethod::MinDegree,
        OrderingMethod::Natural,
        OrderingMethod::Amd,
        OrderingMethod::Colamd,
        OrderingMethod::NestedDissection,
        OrderingMethod::Nesdis,
    ];

    /// The label used in the paper's Table 9.
    pub fn label(&self) -> &'static str {
        match self {
            OrderingMethod::MinDegree => "heuristic",
            OrderingMethod::Natural => "natural",
            OrderingMethod::Amd => "amd",
            OrderingMethod::Colamd => "colamd",
            OrderingMethod::NestedDissection => "metis",
            OrderingMethod::Nesdis => "nesdis",
        }
    }
}

/// Computes the attribute order for the UDUᵀ decomposition from the support
/// of an inverse-covariance estimate.
///
/// Entries of `theta` with `|θ_ij| > threshold` define the undirected
/// dependency graph the heuristics operate on.
pub fn compute_order(theta: &Matrix, threshold: f64, method: OrderingMethod) -> Permutation {
    compute_order_weighted(theta, threshold, method, None)
}

/// Like [`compute_order`], with per-vertex tie-break weights.
///
/// Degree ties are broken toward the *larger* weight (eliminated first,
/// placed last). FDX passes per-attribute pair-agreement rates: determined,
/// low-cardinality attributes agree often and drift to the back of the
/// global order, key-like attributes to the front — the directionality cue
/// behind the paper's Figure 3 readout, where `ProviderNumber` heads every
/// dependency.
pub fn compute_order_weighted(
    theta: &Matrix,
    threshold: f64,
    method: OrderingMethod,
    weights: Option<&[f64]>,
) -> Permutation {
    let _span = fdx_obs::Span::enter("fdx.order");
    let n = theta.rows();
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "weights length must match matrix size");
    }
    let graph = SupportGraph::from_matrix(theta, threshold);
    if fdx_obs::enabled() {
        let edges: usize = (0..n).map(|v| graph.degree(v)).sum::<usize>() / 2;
        fdx_obs::gauge_set("fdx.order.vertices", n as f64);
        fdx_obs::gauge_set("fdx.order.support_edges", edges as f64);
    }
    let elimination = match method {
        OrderingMethod::Natural => (0..n).collect(),
        OrderingMethod::MinDegree => mindeg::min_degree_weighted(&graph, false, weights),
        OrderingMethod::Amd => mindeg::min_degree_weighted(&graph, true, weights),
        OrderingMethod::Colamd => mindeg::min_degree_weighted(&graph.squared(), true, weights),
        OrderingMethod::NestedDissection => dissection::nested_dissection(&graph, 1, weights),
        OrderingMethod::Nesdis => dissection::nested_dissection(&graph, 8, weights),
    };
    elimination_to_order(elimination, method)
}

/// Converts an elimination order into the global attribute order used by the
/// factorization (first-eliminated last), except for `Natural`, which keeps
/// the schema order verbatim.
fn elimination_to_order(mut elimination: Vec<usize>, method: OrderingMethod) -> Permutation {
    if method != OrderingMethod::Natural {
        elimination.reverse();
    }
    // fdx-allow: L001 every ordering heuristic returns a permutation of 0..k
    Permutation::from_order(elimination).expect("heuristics emit valid permutations")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star graph: center 0 connected to 1..=4.
    fn star_theta() -> Matrix {
        let mut t = Matrix::identity(5);
        for leaf in 1..5 {
            t[(0, leaf)] = -0.5;
            t[(leaf, 0)] = -0.5;
        }
        t
    }

    #[test]
    fn natural_is_identity() {
        let p = compute_order(&star_theta(), 0.1, OrderingMethod::Natural);
        assert_eq!(p.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn min_degree_eliminates_leaves_first() {
        // Leaves have degree 1, the hub degree 4: the hub survives until the
        // final degree-tie, so it lands within the first two positions of
        // the global order (first-eliminated last).
        let p = compute_order(&star_theta(), 0.1, OrderingMethod::MinDegree);
        let hub_pos = (0..5).find(|&i| p.image(i) == 0).unwrap();
        assert!(
            hub_pos <= 1,
            "hub too late in global order: {:?}",
            p.as_slice()
        );
    }

    #[test]
    fn all_methods_emit_valid_permutations() {
        let theta = star_theta();
        for method in OrderingMethod::ALL {
            let p = compute_order(&theta, 0.1, method);
            assert_eq!(p.len(), 5, "{method:?}");
            let mut seen = [false; 5];
            for i in 0..5 {
                seen[p.image(i)] = true;
            }
            assert!(seen.iter().all(|&s| s), "{method:?} is not a bijection");
        }
    }

    #[test]
    fn threshold_controls_support() {
        let mut t = Matrix::identity(3);
        t[(0, 1)] = 0.05;
        t[(1, 0)] = 0.05;
        let g_tight = SupportGraph::from_matrix(&t, 0.1);
        assert_eq!(g_tight.degree(0), 0);
        let g_loose = SupportGraph::from_matrix(&t, 0.01);
        assert_eq!(g_loose.degree(0), 1);
    }

    #[test]
    fn labels_match_table9() {
        let labels: Vec<&str> = OrderingMethod::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec!["heuristic", "natural", "amd", "colamd", "metis", "nesdis"]
        );
    }

    #[test]
    fn empty_and_singleton_graphs() {
        for method in OrderingMethod::ALL {
            let p0 = compute_order(&Matrix::zeros(0, 0), 0.1, method);
            assert_eq!(p0.len(), 0);
            let p1 = compute_order(&Matrix::identity(1), 0.1, method);
            assert_eq!(p1.as_slice(), &[0]);
        }
    }
}
