//! Noisy-channel models (paper §3.1): "first a clean data set D is sampled
//! from P_R and a noisy channel model introduces noise in D to generate D′".

use fdx_data::{AttrId, Dataset, Value, NULL_CODE};
use rand::Rng;

/// Flips a `rate` fraction of the cells in `attrs` to a *different* value
/// drawn uniformly from the column's dictionary — the paper's synthetic
/// noise model ("we randomly flip cells that correspond to attributes that
/// participate in true FDs to a different value from their domain").
///
/// Columns with fewer than two distinct values are skipped (no different
/// value exists).
pub fn flip_cells(ds: &mut Dataset, attrs: &[AttrId], rate: f64, rng: &mut impl Rng) {
    assert!((0.0..1.0).contains(&rate));
    let n = ds.nrows();
    for &a in attrs {
        let card = ds.column(a).distinct_count();
        if card < 2 {
            continue;
        }
        for row in 0..n {
            if rng.gen::<f64>() >= rate {
                continue;
            }
            let current = ds.column(a).code(row);
            if current == NULL_CODE {
                continue;
            }
            let mut alt = rng.gen_range(0..card as u32 - 1);
            if alt >= current {
                alt += 1;
            }
            let value = ds.column(a).dictionary()[alt as usize].clone();
            ds.column_mut(a).set_value(row, value);
        }
    }
}

/// Replaces a `rate` fraction of cells (all attributes) with nulls —
/// the "naturally occurring errors that correspond to missing values" of
/// the paper's real-world experiments (Table 6).
pub fn inject_missing(ds: &mut Dataset, rate: f64, rng: &mut impl Rng) {
    assert!((0.0..1.0).contains(&rate));
    let n = ds.nrows();
    for a in 0..ds.ncols() {
        for row in 0..n {
            if rng.gen::<f64>() < rate {
                ds.column_mut(a).set_value(row, Value::Null);
            }
        }
    }
}

/// Systematic noise for the Table 7 imputation experiment: cells of `attr`
/// are corrupted only on rows where `condition_attr` currently holds its
/// most frequent value. This correlates corruption with data content, the
/// defining property of systematic (non-random) noise.
pub fn systematic_flip(
    ds: &mut Dataset,
    attr: AttrId,
    condition_attr: AttrId,
    rate: f64,
    rng: &mut impl Rng,
) {
    assert!((0.0..1.0).contains(&rate));
    assert_ne!(attr, condition_attr);
    let card = ds.column(attr).distinct_count();
    if card < 2 {
        return;
    }
    // Most frequent value of the conditioning attribute.
    let freq = ds.column(condition_attr).frequencies();
    let Some((mode, _)) = freq.iter().enumerate().max_by_key(|&(_, c)| *c) else {
        return;
    };
    for row in 0..ds.nrows() {
        if ds.column(condition_attr).code(row) != mode as u32 {
            continue;
        }
        if rng.gen::<f64>() >= rate {
            continue;
        }
        let current = ds.column(attr).code(row);
        if current == NULL_CODE {
            continue;
        }
        let mut alt = rng.gen_range(0..card as u32 - 1);
        if alt >= current {
            alt += 1;
        }
        let value = ds.column(attr).dictionary()[alt as usize].clone();
        ds.column_mut(attr).set_value(row, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ds() -> Dataset {
        let rows: Vec<[String; 2]> = (0..400)
            .map(|i| [format!("a{}", i % 5), format!("b{}", i % 3)])
            .collect();
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["a", "b"], &slices)
    }

    #[test]
    fn flip_rate_is_respected() {
        let clean = ds();
        let mut noisy = clean.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        flip_cells(&mut noisy, &[0], 0.25, &mut rng);
        // Only column 0 changes; every flip produces a different value.
        let diff = clean.cell_difference_rate(&noisy) * 2.0; // 2 columns
        assert!((diff - 0.25).abs() < 0.06, "diff {diff}");
        for r in 0..clean.nrows() {
            assert_eq!(clean.value(r, 1), noisy.value(r, 1));
        }
    }

    #[test]
    fn flips_never_keep_the_same_value() {
        let clean = ds();
        let mut noisy = clean.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        flip_cells(&mut noisy, &[0, 1], 0.99, &mut rng);
        let mut changed = 0;
        for r in 0..clean.nrows() {
            for a in 0..2 {
                if clean.value(r, a) != noisy.value(r, a) {
                    changed += 1;
                }
            }
        }
        // At 99% rate essentially every cell must differ.
        assert!(changed > 780, "changed {changed}");
    }

    #[test]
    fn missing_injection_creates_nulls() {
        let mut noisy = ds();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        inject_missing(&mut noisy, 0.2, &mut rng);
        let nulls = noisy.null_cells();
        let total = 800.0;
        assert!((nulls as f64 / total - 0.2).abs() < 0.05, "nulls {nulls}");
    }

    #[test]
    fn systematic_flip_targets_mode_rows() {
        let clean = ds();
        let mut noisy = clean.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Condition on column 1; only rows with its mode may change.
        systematic_flip(&mut noisy, 0, 1, 0.9, &mut rng);
        let freq = clean.column(1).frequencies();
        let mode = freq.iter().enumerate().max_by_key(|&(_, c)| *c).unwrap().0 as u32;
        for r in 0..clean.nrows() {
            if clean.value(r, 0) != noisy.value(r, 0) {
                assert_eq!(clean.column(1).code(r), mode, "row {r} not a mode row");
            }
        }
    }

    #[test]
    fn constant_column_is_skipped() {
        let mut ds = Dataset::from_string_rows(&["c", "d"], &[&["x", "1"], &["x", "2"]]);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        flip_cells(&mut ds, &[0], 0.99, &mut rng);
        assert_eq!(ds.value(0, 0), ds.value(1, 0));
    }
}
