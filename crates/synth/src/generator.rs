//! The paper's §5.1 synthetic-data generator.
//!
//! "Given a schema with r attributes our generator first assigns a global
//! order to these attributes and splits the ordered attributes in
//! consecutive attribute sets, whose size is between two and four. […] For
//! half of the (X, Y) groups generated via the above process, we introduce
//! FD-based dependencies […]. For the remainder of those groups we force
//! [a ρ-correlated] conditional probability distribution" with
//! `ρ ~ U[0, 0.85]`, mixing true FDs with strong-but-not-functional
//! correlations.

use fdx_data::{Column, Dataset, Fd, FdSet, Schema, Value};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::noise::flip_cells;

/// Small/Large levels of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// The "Small" setting of Table 2.
    Small,
    /// The "Large" setting of Table 2.
    Large,
}

impl SizeClass {
    /// Short label used in figure keys (`small` / `large`).
    pub fn label(&self) -> &'static str {
        match self {
            SizeClass::Small => "small",
            SizeClass::Large => "large",
        }
    }
}

/// One experimental setting of Table 2: tuple count `t`, attribute count
/// `r`, determinant domain cardinality `d`, and noise rate `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthSetting {
    /// Tuples: Small = 1,000; Large = 100,000.
    pub tuples: SizeClass,
    /// Attributes: Small = 8–16; Large = 40–80.
    pub attributes: SizeClass,
    /// Domain cardinality of FD determinants: Small = 64–216; Large =
    /// 1,000–1,728.
    pub domain: SizeClass,
    /// Fraction of FD-participating cells flipped (Low = 1%, High = 30% in
    /// the paper's figures; any value in `[0, 1)` is accepted).
    pub noise_rate: f64,
}

impl SynthSetting {
    /// The figure key used in the paper, e.g. `t=large r=small d=large n=high`.
    pub fn label(&self) -> String {
        let n = if self.noise_rate > 0.05 {
            "high"
        } else {
            "low"
        };
        format!(
            "t={} r={} d={} n={}",
            self.tuples.label(),
            self.attributes.label(),
            self.domain.label(),
            n
        )
    }

    /// Resolves the setting into concrete generator parameters.
    pub fn to_config(&self, seed: u64) -> SynthConfig {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x517E);
        let tuples = match self.tuples {
            SizeClass::Small => 1_000,
            SizeClass::Large => 100_000,
        };
        let attributes = match self.attributes {
            SizeClass::Small => rng.gen_range(8..=16),
            SizeClass::Large => rng.gen_range(40..=80),
        };
        let domain = match self.domain {
            SizeClass::Small => (64, 216),
            SizeClass::Large => (1_000, 1_728),
        };
        SynthConfig {
            tuples,
            attributes,
            domain_range: domain,
            noise_rate: self.noise_rate,
            seed,
        }
    }
}

/// Concrete parameters of one synthetic instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Number of tuples `t`.
    pub tuples: usize,
    /// Number of attributes `r`.
    pub attributes: usize,
    /// Range `(lo, hi)` for the determinant domain cardinality `v`.
    pub domain_range: (usize, usize),
    /// Fraction of FD-participating cells flipped to another domain value.
    pub noise_rate: f64,
    /// Seed controlling splits, maps, and samples.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            tuples: 1_000,
            attributes: 12,
            domain_range: (64, 216),
            noise_rate: 0.01,
            seed: 7,
        }
    }
}

/// A generated instance: the clean data, its noisy counterpart, and the
/// planted ground truth.
#[derive(Debug, Clone)]
pub struct SynthData {
    /// The clean sample from the generating distribution.
    pub clean: Dataset,
    /// The noisy instance handed to discovery methods.
    pub noisy: Dataset,
    /// The planted FDs.
    pub true_fds: FdSet,
    /// Attributes participating in any planted FD.
    pub fd_attributes: Vec<usize>,
}

/// Generates one synthetic instance following §5.1.
pub fn generate(cfg: &SynthConfig) -> SynthData {
    assert!(
        cfg.attributes >= 2,
        "need at least one group of two attributes"
    );
    assert!((0.0..1.0).contains(&cfg.noise_rate));
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Split the attribute order into consecutive groups of size 2..=4.
    let mut groups: Vec<(Vec<usize>, usize)> = Vec::new(); // (X, Y)
    let mut next = 0usize;
    while next < cfg.attributes {
        let remaining = cfg.attributes - next;
        let size = if remaining < 2 {
            // Attach a trailing singleton to the previous group's X.
            if let Some((x, _)) = groups.last_mut() {
                x.push(next);
            }
            break;
        } else {
            rng.gen_range(2..=4usize.min(remaining))
        };
        let members: Vec<usize> = (next..next + size).collect();
        next += size;
        let (y, x) = members
            .split_last()
            // fdx-allow: L001 size >= 2 above, so members is never empty
            .expect("group has at least two members");
        groups.push((x.to_vec(), *y));
    }

    // Half the groups get FDs, half ρ-correlations (alternating after a
    // shuffle so the halves are position-independent).
    let mut fd_flags: Vec<bool> = (0..groups.len()).map(|i| i % 2 == 0).collect();
    for i in (1..fd_flags.len()).rev() {
        let j = rng.gen_range(0..=i);
        fd_flags.swap(i, j);
    }

    let schema = Schema::new(
        (0..cfg.attributes)
            .map(|i| fdx_data::Attribute::categorical(format!("A{i}")))
            .collect(),
    );

    let mut columns: Vec<Vec<u32>> = vec![vec![0; cfg.tuples]; cfg.attributes];
    let mut dicts: Vec<usize> = vec![0; cfg.attributes]; // cardinality per attr
    let mut true_fds = FdSet::new();
    let mut fd_attributes: Vec<usize> = Vec::new();

    for ((x_attrs, y_attr), &is_fd) in groups.iter().zip(&fd_flags) {
        // Choose v and per-attribute domains whose product is ≈ v.
        let v = rng.gen_range(cfg.domain_range.0..=cfg.domain_range.1);
        let per = (v as f64).powf(1.0 / x_attrs.len() as f64).round().max(2.0) as usize;
        let mut x_cards = vec![per; x_attrs.len()];
        // Adjust the last card so the product lands near v.
        let partial: usize = x_cards[..x_cards.len() - 1].iter().product();
        *x_cards
            .last_mut()
            // fdx-allow: L001 x_cards mirrors x_attrs, which every group keeps non-empty
            .expect("per-group cardinalities are non-empty") = (v / partial.max(1)).max(2);
        let config_count: usize = x_cards.iter().product();
        let y_card = v.min(config_count).max(2);

        for (&a, &c) in x_attrs.iter().zip(&x_cards) {
            dicts[a] = c;
        }
        dicts[*y_attr] = y_card;

        // Map from X configuration to Y value.
        let mapping: Vec<u32> = (0..config_count)
            .map(|_| rng.gen_range(0..y_card as u32))
            .collect();
        let rho = if is_fd { 1.0 } else { rng.gen_range(0.0..0.85) };

        for row in 0..cfg.tuples {
            // X values uniform over their domains.
            let mut config = 0usize;
            let mut stride = 1usize;
            for (&a, &c) in x_attrs.iter().zip(&x_cards) {
                let val = rng.gen_range(0..c as u32);
                columns[a][row] = val;
                config += val as usize * stride;
                stride *= c;
            }
            let r0 = mapping[config];
            let y = if rng.gen::<f64>() < rho || y_card == 1 {
                r0
            } else {
                // Uniform over the other values.
                let mut alt = rng.gen_range(0..y_card as u32 - 1);
                if alt >= r0 {
                    alt += 1;
                }
                alt
            };
            columns[*y_attr][row] = y;
        }

        if is_fd {
            true_fds.insert(Fd::new(x_attrs.iter().copied(), *y_attr));
            fd_attributes.extend(x_attrs.iter().copied());
            fd_attributes.push(*y_attr);
        }
    }

    let dataset_columns: Vec<Column> = columns
        .into_iter()
        .enumerate()
        .map(|(a, codes)| {
            let dict: Vec<Value> = (0..dicts[a].max(1))
                .map(|s| Value::text(format!("v{a}_{s}")))
                .collect();
            Column::from_codes(codes, dict)
        })
        .collect();
    let clean = Dataset::new(schema, dataset_columns);

    // Noise: flip FD-participating cells to a different domain value.
    let mut noisy = clean.clone();
    if cfg.noise_rate > 0.0 && !fd_attributes.is_empty() {
        flip_cells(&mut noisy, &fd_attributes, cfg.noise_rate, &mut rng);
    }

    fd_attributes.sort_unstable();
    fd_attributes.dedup();
    SynthData {
        clean,
        noisy,
        true_fds,
        fd_attributes,
    }
}

/// The eight settings shown in the paper's Figure 2, in panel order
/// (a)–(h).
pub fn figure2_settings() -> Vec<SynthSetting> {
    let mk = |t, r, d, n: f64| SynthSetting {
        tuples: t,
        attributes: r,
        domain: d,
        noise_rate: n,
    };
    use SizeClass::{Large, Small};
    vec![
        mk(Large, Large, Large, 0.30),
        mk(Large, Large, Large, 0.01),
        mk(Large, Small, Large, 0.30),
        mk(Large, Small, Large, 0.01),
        mk(Small, Small, Large, 0.30),
        mk(Small, Small, Large, 0.01),
        mk(Small, Small, Small, 0.30),
        mk(Small, Small, Small, 0.01),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_config() {
        let cfg = SynthConfig {
            tuples: 500,
            attributes: 10,
            ..Default::default()
        };
        let data = generate(&cfg);
        assert_eq!(data.clean.nrows(), 500);
        assert_eq!(data.clean.ncols(), 10);
        assert_eq!(data.noisy.nrows(), 500);
        assert!(!data.true_fds.is_empty());
    }

    #[test]
    fn clean_data_satisfies_planted_fds() {
        let data = generate(&SynthConfig::default());
        for fd in data.true_fds.iter() {
            let mut map = std::collections::HashMap::new();
            for r in 0..data.clean.nrows() {
                let key: Vec<u32> = fd.lhs().iter().map(|&a| data.clean.code(r, a)).collect();
                let y = data.clean.code(r, fd.rhs());
                let e = map.entry(key).or_insert(y);
                assert_eq!(*e, y, "planted FD violated in clean data");
            }
        }
    }

    #[test]
    fn roughly_half_groups_are_fds() {
        // With 40 attributes there are >= 10 groups; both kinds must occur.
        let cfg = SynthConfig {
            attributes: 40,
            tuples: 200,
            ..Default::default()
        };
        let data = generate(&cfg);
        let n_groups_lower_bound = 40 / 4;
        assert!(data.true_fds.len() >= n_groups_lower_bound / 3);
        // Correlation groups exist: some attributes participate in no FD.
        assert!(data.fd_attributes.len() < 40);
    }

    #[test]
    fn noise_rate_controls_cell_difference() {
        let cfg = SynthConfig {
            noise_rate: 0.3,
            tuples: 2_000,
            ..Default::default()
        };
        let data = generate(&cfg);
        // Difference rate over FD attributes ≈ 30% of flips actually change
        // the value (flips always pick a different value, so ≈ rate times
        // fraction of FD cells).
        let diff = data.clean.cell_difference_rate(&data.noisy);
        let fd_fraction = data.fd_attributes.len() as f64 / data.clean.ncols() as f64;
        let expected = 0.3 * fd_fraction;
        assert!(
            (diff - expected).abs() < 0.05,
            "diff {diff}, expected ≈ {expected}"
        );
    }

    #[test]
    fn zero_noise_means_identical() {
        let cfg = SynthConfig {
            noise_rate: 0.0,
            ..Default::default()
        };
        let data = generate(&cfg);
        assert_eq!(data.clean, data.noisy);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&SynthConfig::default());
        let b = generate(&SynthConfig::default());
        assert_eq!(a.noisy, b.noisy);
        let c = generate(&SynthConfig {
            seed: 8,
            ..Default::default()
        });
        assert_ne!(a.noisy, c.noisy);
    }

    #[test]
    fn figure2_panels() {
        let settings = figure2_settings();
        assert_eq!(settings.len(), 8);
        assert_eq!(settings[0].label(), "t=large r=large d=large n=high");
        assert_eq!(settings[7].label(), "t=small r=small d=small n=low");
    }

    #[test]
    fn setting_resolution_ranges() {
        let s = SynthSetting {
            tuples: SizeClass::Small,
            attributes: SizeClass::Large,
            domain: SizeClass::Small,
            noise_rate: 0.01,
        };
        let cfg = s.to_config(3);
        assert_eq!(cfg.tuples, 1_000);
        assert!((40..=80).contains(&cfg.attributes));
        assert_eq!(cfg.domain_range, (64, 216));
    }

    #[test]
    fn lhs_sizes_between_one_and_three() {
        let data = generate(&SynthConfig {
            attributes: 60,
            tuples: 100,
            ..Default::default()
        });
        for fd in data.true_fds.iter() {
            assert!((1..=4).contains(&fd.lhs().len()), "lhs {:?}", fd.lhs());
        }
    }
}
