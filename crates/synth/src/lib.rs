//! Workload generators for the FDX reproduction.
//!
//! Three generator families back the paper's evaluation:
//!
//! * [`generator`] — the §5.1 synthetic-data process: a global attribute
//!   order split into consecutive groups, half of which carry exact FDs and
//!   half ρ-correlations, with controlled tuple counts, attribute counts,
//!   and determinant domain cardinalities (Table 2's `t`/`r`/`d` knobs),
//! * [`noise`] — the noisy-channel models of §3.1: random cell flips on
//!   FD-participating attributes (the `n` knob), missing-value injection,
//!   and the systematic-noise variant used by Table 7,
//! * [`realworld`] — shape- and structure-faithful stand-ins for the six
//!   real-world datasets of Table 3 (see `DESIGN.md`, substitution #2).

pub mod generator;
pub mod noise;
pub mod realworld;

pub use generator::{SizeClass, SynthConfig, SynthData, SynthSetting};
pub use noise::{flip_cells, inject_missing, systematic_flip};
