//! Shape- and structure-faithful stand-ins for the six real-world datasets
//! of the paper's Table 3.
//!
//! The original files (UCI, HoloClean's Hospital, the NYPD complaint data)
//! are not redistributable inside this repository, so each generator
//! reproduces what the paper's experiments actually exercise: the published
//! row/column counts, the dependency structure discussed in §5.4–§5.5
//! (e.g. Hospital's `ProviderNumber → HospitalName`,
//! `MeasureCode → MeasureName → StateAvg`, the 89%-skewed `State` column),
//! realistic domain cardinalities, and naturally-missing values. See
//! `DESIGN.md`, substitution #2.

use fdx_data::{AttrId, Dataset, Fd, FdSet, Schema, Value};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::noise::inject_missing;

/// A generated stand-in: the instance plus the dependencies planted in it.
#[derive(Debug, Clone)]
pub struct RealWorld {
    /// Table 3 dataset name.
    pub name: &'static str,
    /// The instance (with missing values already injected).
    pub data: Dataset,
    /// The dependencies planted by the generator (used as reference in the
    /// qualitative analyses and Table 7's with/without-FD split).
    pub planted: FdSet,
}

/// Looks up a planted attribute by name. Each generator writes its `Fd`
/// list a few lines below the schema it just built, so a missing name is a
/// bug in this module, not a recoverable condition.
fn attr(data: &Dataset, name: &str) -> AttrId {
    match data.schema().id_of(name) {
        Some(id) => id,
        // fdx-allow: L004 generator invariant: planted names come from the schema literal above
        None => panic!("realworld schema has no attribute named {name:?}"),
    }
}

/// Hospital: 1,000 × 17, the dataset of Figures 3–4.
pub fn hospital(seed: u64) -> RealWorld {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x405B);
    let names = [
        "ProviderNumber",
        "HospitalName",
        "Address1",
        "City",
        "State",
        "ZipCode",
        "CountyName",
        "PhoneNumber",
        "HospitalOwner",
        "HospitalType",
        "EmergencyService",
        "Condition",
        "MeasureCode",
        "MeasureName",
        "Sample",
        "StateAvg",
        "Score",
    ];
    let schema = Schema::from_names(&names);

    // Geography: 15 cities; ~89% of them in AL, the rest in AK (the paper's
    // skew that makes FDX treat State as near-constant).
    let n_cities = 15;
    let cities: Vec<(String, String, &'static str)> = (0..n_cities)
        .map(|c| {
            let state = if c < 13 { "AL" } else { "AK" };
            (format!("city{c}"), format!("county{c}"), state)
        })
        .collect();
    // 40 hospitals; each pinned to a city and a unique zip.
    #[allow(clippy::type_complexity)]
    let hospitals: Vec<(
        String,
        String,
        String,
        usize,
        String,
        String,
        String,
        String,
    )> = (0..40)
        .map(|h| {
            let city = rng.gen_range(0..n_cities);
            (
                format!("{}", 10000 + h),              // provider number
                format!("hospital {h}"),               // name
                format!("{h} main street"),            // address
                city,                                  // city index
                format!("357{:04}", 100 + h),          // zip (unique per hospital)
                format!("205{:07}", 1000000 + h * 13), // phone
                format!("owner {}", h % 6),            // owner
                "Acute Care Hospitals".to_string(),    // type (constant-ish)
            )
        })
        .collect();
    // Measures: 25 codes, 1–1 names, grouped under 6 conditions.
    let measures: Vec<(String, String, usize)> = (0..25)
        .map(|m| (format!("AMI-{m}"), format!("measure name {m}"), m % 6))
        .collect();
    let conditions = [
        "Heart Attack",
        "Heart Failure",
        "Pneumonia",
        "Surgical Infection",
        "Stroke",
        "Asthma",
    ];

    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(1_000);
    for _ in 0..1_000 {
        let h = &hospitals[rng.gen_range(0..hospitals.len())];
        let m = &measures[rng.gen_range(0..measures.len())];
        let (city, county, state) = &cities[h.3];
        rows.push(vec![
            Value::text(&h.0),
            Value::text(&h.1),
            Value::text(&h.2),
            Value::text(city),
            Value::text(*state),
            Value::text(&h.4),
            Value::text(county),
            Value::text(&h.5),
            Value::text(&h.6),
            Value::text(&h.7),
            Value::text(if rng.gen_bool(0.5) { "Yes" } else { "No" }),
            Value::text(conditions[m.2]),
            Value::text(&m.0),
            Value::text(&m.1),
            Value::Int(rng.gen_range(10..500)),
            Value::text(format!("{}_{}", state, m.0)),
            Value::Int(rng.gen_range(0..100)),
        ]);
    }
    let mut data = Dataset::from_rows(schema, &rows);
    inject_missing(&mut data, 0.02, &mut rng);

    let id = |n: &str| attr(&data, n);
    let planted = FdSet::from_fds([
        Fd::new([id("ProviderNumber")], id("HospitalName")),
        Fd::new([id("ProviderNumber")], id("Address1")),
        Fd::new([id("ProviderNumber")], id("ZipCode")),
        Fd::new([id("ProviderNumber")], id("PhoneNumber")),
        Fd::new([id("ZipCode")], id("City")),
        Fd::new([id("City")], id("CountyName")),
        Fd::new([id("City")], id("State")),
        Fd::new([id("PhoneNumber")], id("HospitalOwner")),
        Fd::new([id("MeasureCode")], id("MeasureName")),
        Fd::new([id("MeasureCode")], id("Condition")),
        Fd::new([id("State"), id("MeasureCode")], id("StateAvg")),
    ]);
    RealWorld {
        name: "Hospital",
        data,
        planted,
    }
}

/// Australian Credit Approval: 690 × 15, anonymized attributes `A1..A15`;
/// `A8` determines the target `A15` (the §5.5 feature-engineering readout).
pub fn australian(seed: u64) -> RealWorld {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA057);
    let names: Vec<String> = (1..=15).map(|i| format!("A{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let schema = Schema::from_names(&name_refs);
    let cards = [3usize, 8, 4, 3, 14, 9, 5, 2, 2, 6, 2, 3, 10, 12, 2];
    let mut rows = Vec::with_capacity(690);
    for _ in 0..690 {
        let mut row: Vec<Value> = (0..15)
            .map(|a| Value::text(format!("v{}", rng.gen_range(0..cards[a]))))
            .collect();
        // A8 -> A15 (approval): near-deterministic with 5% exceptions.
        let a8 = rng.gen_range(0..2);
        row[7] = Value::text(format!("v{a8}"));
        let target = if rng.gen_bool(0.95) { a8 } else { 1 - a8 };
        row[14] = Value::text(format!("v{target}"));
        // A4 correlates with A5 (soft).
        if rng.gen_bool(0.7) {
            let shared = rng.gen_range(0..3);
            row[3] = Value::text(format!("v{shared}"));
            row[4] = Value::text(format!("v{shared}"));
        }
        rows.push(row);
    }
    let mut data = Dataset::from_rows(schema, &rows);
    inject_missing(&mut data, 0.01, &mut rng);
    let planted = FdSet::from_fds([Fd::new([7], 14)]);
    RealWorld {
        name: "Australian",
        data,
        planted,
    }
}

/// Mammographic Mass: 830 × 6; mass `shape` and `margin` determine
/// `severity`, and `severity` determines the BI-RADS assessment (§5.5).
pub fn mammographic(seed: u64) -> RealWorld {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x3A33);
    let schema = Schema::from_names(&["rads", "age", "shape", "margin", "density", "severity"]);
    let mut rows = Vec::with_capacity(830);
    for _ in 0..830 {
        let shape = rng.gen_range(0..4u32);
        let margin = rng.gen_range(0..5u32);
        // severity = f(shape, margin), 6% exceptions (clinical noise).
        let base = (shape * 5 + margin) as usize % 2;
        let severity = if rng.gen_bool(0.94) { base } else { 1 - base };
        // BI-RADS tracks severity with 8% exceptions.
        let rads = if rng.gen_bool(0.92) {
            3 + severity as u32 * 2
        } else {
            rng.gen_range(1..=5)
        };
        rows.push(vec![
            Value::Int(rads as i64),
            Value::Int(rng.gen_range(25..85)),
            Value::Int(shape as i64 + 1),
            Value::Int(margin as i64 + 1),
            Value::Int(rng.gen_range(1..5)),
            Value::Int(severity as i64),
        ]);
    }
    let mut data = Dataset::from_rows(schema, &rows);
    inject_missing(&mut data, 0.03, &mut rng);
    let planted = FdSet::from_fds([
        Fd::new([2, 3], 5), // shape, margin -> severity
        Fd::new([5], 0),    // severity -> rads
    ]);
    RealWorld {
        name: "Mammographic",
        data,
        planted,
    }
}

/// NYPD complaint data: 34,382 × 17 — the scalability row of Table 6.
pub fn nypd(seed: u64) -> RealWorld {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x17BD);
    let names = [
        "CMPLNT_NUM",
        "CMPLNT_FR_DT",
        "CMPLNT_FR_TM",
        "RPT_DT",
        "KY_CD",
        "OFNS_DESC",
        "PD_CD",
        "PD_DESC",
        "CRM_ATPT_CPTD_CD",
        "LAW_CAT_CD",
        "BORO_NM",
        "ADDR_PCT_CD",
        "LOC_OF_OCCUR_DESC",
        "PREM_TYP_DESC",
        "JURIS_DESC",
        "Latitude",
        "Longitude",
    ];
    let schema = Schema::from_names(&names);
    // Offense taxonomy: 60 KY codes -> description + law category;
    // 140 PD codes -> description + KY code. 77 precincts -> borough.
    let ky: Vec<(i64, String, &'static str)> = (0..60)
        .map(|k| {
            let cat = ["FELONY", "MISDEMEANOR", "VIOLATION"][k % 3];
            (100 + k as i64, format!("offense {k}"), cat)
        })
        .collect();
    let pd: Vec<(i64, String, usize)> = (0..140)
        .map(|p| (200 + p as i64, format!("pd desc {p}"), p % 60))
        .collect();
    let boroughs = ["MANHATTAN", "BROOKLYN", "QUEENS", "BRONX", "STATEN ISLAND"];
    let precincts: Vec<(i64, usize)> = (0..77).map(|p| (p as i64 + 1, p % 5)).collect();

    let mut rows = Vec::with_capacity(34_382);
    for i in 0..34_382 {
        let pd_rec = &pd[rng.gen_range(0..pd.len())];
        let ky_rec = &ky[pd_rec.2];
        let (pct, boro) = precincts[rng.gen_range(0..precincts.len())];
        rows.push(vec![
            Value::Int(100_000_000 + i as i64),
            Value::text(format!(
                "2015-{:02}-{:02}",
                rng.gen_range(1..13),
                rng.gen_range(1..29)
            )),
            Value::text(format!(
                "{:02}:{:02}",
                rng.gen_range(0..24),
                rng.gen_range(0..60)
            )),
            Value::text(format!(
                "2015-{:02}-{:02}",
                rng.gen_range(1..13),
                rng.gen_range(1..29)
            )),
            Value::Int(ky_rec.0),
            Value::text(&ky_rec.1),
            Value::Int(pd_rec.0),
            Value::text(&pd_rec.1),
            Value::text(if rng.gen_bool(0.8) {
                "COMPLETED"
            } else {
                "ATTEMPTED"
            }),
            Value::text(ky_rec.2),
            Value::text(boroughs[boro]),
            Value::Int(pct),
            Value::text(["INSIDE", "FRONT OF", "OPPOSITE OF", "REAR OF"][rng.gen_range(0..4)]),
            Value::text(format!("premises {}", rng.gen_range(0..30))),
            Value::text(
                [
                    "N.Y. POLICE DEPT",
                    "N.Y. HOUSING POLICE",
                    "N.Y. TRANSIT POLICE",
                ][rng.gen_range(0..3)],
            ),
            Value::float_quantized(40.5 + rng.gen_range(0.0..0.4), 3),
            Value::float_quantized(-74.2 + rng.gen_range(0.0..0.5), 3),
        ]);
    }
    let mut data = Dataset::from_rows(schema, &rows);
    inject_missing(&mut data, 0.04, &mut rng);
    let id = |n: &str| attr(&data, n);
    let planted = FdSet::from_fds([
        Fd::new([id("KY_CD")], id("OFNS_DESC")),
        Fd::new([id("KY_CD")], id("LAW_CAT_CD")),
        Fd::new([id("PD_CD")], id("PD_DESC")),
        Fd::new([id("PD_CD")], id("KY_CD")),
        Fd::new([id("ADDR_PCT_CD")], id("BORO_NM")),
    ]);
    RealWorld {
        name: "NYPD",
        data,
        planted,
    }
}

/// Thoracic Surgery: 470 × 17, mostly binary clinical indicators.
pub fn thoracic(seed: u64) -> RealWorld {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7403);
    let names = [
        "DGN", "PRE4", "PRE5", "PRE6", "PRE7", "PRE8", "PRE9", "PRE10", "PRE11", "PRE14", "PRE17",
        "PRE19", "PRE25", "PRE30", "PRE32", "AGE", "Risk1Yr",
    ];
    let schema = Schema::from_names(&names);
    let mut rows = Vec::with_capacity(470);
    for _ in 0..470 {
        let dgn = rng.gen_range(0..7u32);
        // Tumour size class (PRE14) follows diagnosis; staging (PRE6)
        // follows size class.
        let pre14 = (dgn % 4) as i64 + 1;
        let pre6 = if rng.gen_bool(0.93) {
            pre14 % 3
        } else {
            rng.gen_range(0..3)
        };
        let mut row = vec![Value::text(format!("DGN{dgn}"))];
        row.push(Value::float_quantized(rng.gen_range(1.4..6.3), 1)); // PRE4
        row.push(Value::float_quantized(rng.gen_range(0.9..5.0), 1)); // PRE5
        row.push(Value::Int(pre6));
        for _ in 0..6 {
            row.push(Value::text(if rng.gen_bool(0.2) { "T" } else { "F" }));
        }
        row.push(Value::Int(pre14));
        for _ in 0..4 {
            row.push(Value::text(if rng.gen_bool(0.15) { "T" } else { "F" }));
        }
        row.push(Value::Int(rng.gen_range(21..87)));
        row.push(Value::text(if rng.gen_bool(0.15) { "T" } else { "F" }));
        rows.push(row);
    }
    let mut data = Dataset::from_rows(schema, &rows);
    inject_missing(&mut data, 0.02, &mut rng);
    let id = |n: &str| attr(&data, n);
    let planted = FdSet::from_fds([
        Fd::new([id("DGN")], id("PRE14")),
        Fd::new([id("PRE14")], id("PRE6")),
    ]);
    RealWorld {
        name: "Thoracic",
        data,
        planted,
    }
}

/// Tic-Tac-Toe endgames: 958 × 10 — nine board cells plus the outcome class
/// (a deterministic function of the full board, no small FDs).
pub fn tictactoe(seed: u64) -> RealWorld {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x71C7);
    let names = [
        "top-left",
        "top-middle",
        "top-right",
        "middle-left",
        "middle-middle",
        "middle-right",
        "bottom-left",
        "bottom-middle",
        "bottom-right",
        "class",
    ];
    let schema = Schema::from_names(&names);
    let mut rows = Vec::with_capacity(958);
    let lines: [[usize; 3]; 8] = [
        [0, 1, 2],
        [3, 4, 5],
        [6, 7, 8],
        [0, 3, 6],
        [1, 4, 7],
        [2, 5, 8],
        [0, 4, 8],
        [2, 4, 6],
    ];
    for _ in 0..958 {
        // Random legal-ish endgame: 5 x's, 4 o's placed randomly.
        let mut board = ['b'; 9];
        let mut cells: Vec<usize> = (0..9).collect();
        for i in (1..9).rev() {
            let j = rng.gen_range(0..=i);
            cells.swap(i, j);
        }
        for (i, &c) in cells.iter().enumerate().take(9) {
            board[c] = if i % 2 == 0 { 'x' } else { 'o' };
        }
        let x_wins = lines.iter().any(|l| l.iter().all(|&c| board[c] == 'x'));
        let mut row: Vec<Value> = board.iter().map(|&c| Value::text(c.to_string())).collect();
        row.push(Value::text(if x_wins { "positive" } else { "negative" }));
        rows.push(row);
    }
    let mut data = Dataset::from_rows(schema, &rows);
    inject_missing(&mut data, 0.005, &mut rng);
    let planted = FdSet::from_fds([Fd::new(0..9, 9)]);
    RealWorld {
        name: "Tic-Tac-Toe",
        data,
        planted,
    }
}

/// All six stand-ins, in the row order of Table 3 / Table 6.
pub fn all(seed: u64) -> Vec<RealWorld> {
    vec![
        australian(seed),
        hospital(seed),
        mammographic(seed),
        nypd(seed),
        thoracic(seed),
        tictactoe(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_table3() {
        let expected = [
            ("Australian", 690, 15),
            ("Hospital", 1_000, 17),
            ("Mammographic", 830, 6),
            ("NYPD", 34_382, 17),
            ("Thoracic", 470, 17),
            ("Tic-Tac-Toe", 958, 10),
        ];
        for (rw, (name, rows, cols)) in all(0).iter().zip(expected) {
            assert_eq!(rw.name, name);
            assert_eq!(rw.data.nrows(), rows, "{name}");
            assert_eq!(rw.data.ncols(), cols, "{name}");
        }
    }

    #[test]
    fn all_have_missing_values() {
        for rw in all(1) {
            assert!(rw.data.null_cells() > 0, "{} has no nulls", rw.name);
        }
    }

    #[test]
    fn hospital_geography_is_consistent() {
        let h = hospital(3);
        let id = |n: &str| h.data.schema().id_of(n).unwrap();
        let (zip, city, county) = (id("ZipCode"), id("City"), id("CountyName"));
        let mut zip_to_city = std::collections::HashMap::new();
        let mut city_to_county = std::collections::HashMap::new();
        for r in 0..h.data.nrows() {
            if !h.data.value(r, zip).is_null() && !h.data.value(r, city).is_null() {
                let e = zip_to_city
                    .entry(h.data.value(r, zip).clone())
                    .or_insert_with(|| h.data.value(r, city).clone());
                assert_eq!(e, h.data.value(r, city), "zip->city violated");
            }
            if !h.data.value(r, city).is_null() && !h.data.value(r, county).is_null() {
                let e = city_to_county
                    .entry(h.data.value(r, city).clone())
                    .or_insert_with(|| h.data.value(r, county).clone());
                assert_eq!(e, h.data.value(r, county), "city->county violated");
            }
        }
    }

    #[test]
    fn hospital_state_is_skewed() {
        let h = hospital(5);
        let state = h.data.schema().id_of("State").unwrap();
        let freq = h.data.column(state).frequencies();
        let max = *freq.iter().max().unwrap() as f64;
        let total: usize = freq.iter().sum();
        assert!(max / total as f64 > 0.7, "state skew too low");
    }

    #[test]
    fn tictactoe_class_is_function_of_board() {
        let t = tictactoe(2);
        let mut map = std::collections::HashMap::new();
        for r in 0..t.data.nrows() {
            let mut board: Vec<&Value> = (0..9).map(|c| t.data.value(r, c)).collect();
            let class = t.data.value(r, 9);
            if board.iter().any(|v| v.is_null()) || class.is_null() {
                continue;
            }
            let key: Vec<String> = board.drain(..).map(|v| v.to_string()).collect();
            let e = map.entry(key).or_insert_with(|| class.clone());
            assert_eq!(e, class);
        }
    }

    #[test]
    fn planted_fds_are_nontrivial() {
        for rw in all(7) {
            assert!(!rw.planted.is_empty(), "{}", rw.name);
            for fd in rw.planted.iter() {
                assert!(fd.rhs() < rw.data.ncols());
            }
        }
    }

    #[test]
    fn nypd_taxonomy_holds() {
        let n = nypd(11);
        let id = |s: &str| n.data.schema().id_of(s).unwrap();
        let (ky, desc) = (id("KY_CD"), id("OFNS_DESC"));
        let mut map = std::collections::HashMap::new();
        for r in 0..2_000 {
            let k = n.data.value(r, ky);
            let d = n.data.value(r, desc);
            if k.is_null() || d.is_null() {
                continue;
            }
            let e = map.entry(k.clone()).or_insert_with(|| d.clone());
            assert_eq!(e, d, "KY_CD -> OFNS_DESC violated");
        }
    }
}
