//! Bounded ring-buffer request journal.
//!
//! Metric counters and histograms aggregate; the journal keeps the *last N
//! individual requests* so a live `stats` probe (or a post-mortem on the
//! drain-flushed artifact) can answer "what exactly ran just now, and how
//! did it go" — per request: id, outcome code, queue wait, total and
//! per-phase seconds, the resilience rung the run landed on, and the kernel
//! thread count it ran with.
//!
//! The buffer is a fixed-capacity ring guarded by one mutex: recording is
//! O(1), never allocates beyond the evicted entry's replacement, and
//! wraparound is deterministic — after `M > cap` records the journal holds
//! exactly the entries with sequence numbers `M-cap+1 ..= M`, oldest first.
//! Recording is *not* gated on [`crate::enabled`]: the journal is written
//! once per service request by explicit calls (not ambient instrumentation),
//! and the `stats` protocol op must work even when metric recording is off.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use crate::json::Obj;

/// Default ring capacity of the global journal.
pub const DEFAULT_JOURNAL_CAP: usize = 256;

/// One journaled request.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// 1-based sequence number, assigned by [`Journal::record`] (leave 0).
    pub seq: u64,
    /// Caller-supplied request id.
    pub id: String,
    /// Outcome code: `"ok"`, `"degraded"`, or a typed error code.
    pub outcome: String,
    /// Seconds the request waited in the queue before a worker took it.
    pub queue_wait_secs: f64,
    /// Total pipeline seconds (or service seconds for failed requests).
    pub total_secs: f64,
    /// Per-phase seconds, in pipeline order; empty for failed requests.
    pub phases: Vec<(String, f64)>,
    /// Resilience-ladder rung that produced the result (0 when the request
    /// never produced one).
    pub rung: u8,
    /// Kernel threads the request ran with.
    pub threads: usize,
    /// Session the request ran against — the content-hash dataset handle
    /// for session-mode requests, `None` for one-shot CSV requests.
    pub session: Option<String>,
}

impl JournalEntry {
    /// Serializes the entry as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut phases = Obj::new();
        for (name, secs) in &self.phases {
            phases = phases.f64_(name, *secs);
        }
        let mut obj = Obj::new()
            .u64_("seq", self.seq)
            .str_("id", &self.id)
            .str_("outcome", &self.outcome);
        if let Some(session) = &self.session {
            obj = obj.str_("session", session);
        }
        obj.f64_("queue_wait_secs", self.queue_wait_secs)
            .f64_("total_secs", self.total_secs)
            .u64_("rung", self.rung as u64)
            .u64_("threads", self.threads as u64)
            .raw("phases", &phases.finish())
            .finish()
    }
}

struct Ring {
    entries: VecDeque<JournalEntry>,
    cap: usize,
    /// Total entries ever recorded; also the seq of the newest entry.
    recorded: u64,
}

/// A bounded request journal. Use [`Journal::global`] for the process-wide
/// instance the service records into.
pub struct Journal {
    inner: Mutex<Ring>,
}

impl Journal {
    /// A standalone journal with the given ring capacity (min 1).
    pub fn with_capacity(cap: usize) -> Journal {
        Journal {
            inner: Mutex::new(Ring {
                entries: VecDeque::with_capacity(cap.max(1)),
                cap: cap.max(1),
                recorded: 0,
            }),
        }
    }

    /// The process-global journal ([`DEFAULT_JOURNAL_CAP`] entries).
    pub fn global() -> &'static Journal {
        static GLOBAL: OnceLock<Journal> = OnceLock::new();
        GLOBAL.get_or_init(|| Journal::with_capacity(DEFAULT_JOURNAL_CAP))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        // Entries stay coherent across an unwind; shrug off poisoning.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends an entry, assigning and returning its sequence number; the
    /// oldest entry is evicted once the ring is full.
    pub fn record(&self, mut entry: JournalEntry) -> u64 {
        let mut ring = self.lock();
        ring.recorded += 1;
        entry.seq = ring.recorded;
        let seq = entry.seq;
        if ring.entries.len() == ring.cap {
            ring.entries.pop_front();
        }
        ring.entries.push_back(entry);
        seq
    }

    /// The newest `n` entries, oldest first.
    pub fn tail(&self, n: usize) -> Vec<JournalEntry> {
        let ring = self.lock();
        let skip = ring.entries.len().saturating_sub(n);
        ring.entries.iter().skip(skip).cloned().collect()
    }

    /// Entries currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether nothing is currently held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries ever recorded (monotonic across wraparound).
    pub fn recorded(&self) -> u64 {
        self.lock().recorded
    }

    /// Clears entries and the sequence counter (tests and fresh servers).
    pub fn reset(&self) {
        let mut ring = self.lock();
        ring.entries.clear();
        ring.recorded = 0;
    }

    /// All held entries as deterministic JSON lines, oldest first — the
    /// drain-flush artifact shape.
    pub fn export_jsonl(&self) -> String {
        let ring = self.lock();
        let mut out = String::new();
        for e in &ring.entries {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, outcome: &str) -> JournalEntry {
        JournalEntry {
            seq: 0,
            id: id.to_string(),
            outcome: outcome.to_string(),
            queue_wait_secs: 0.25,
            total_secs: 1.5,
            phases: vec![("transform".to_string(), 1.0)],
            rung: 1,
            threads: 2,
            session: None,
        }
    }

    #[test]
    fn wraparound_is_deterministic() {
        let j = Journal::with_capacity(4);
        for i in 0..11 {
            let seq = j.record(entry(&format!("r{i}"), "ok"));
            assert_eq!(seq, i + 1);
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.recorded(), 11);
        // Exactly the last `cap` entries survive, oldest first.
        let tail = j.tail(usize::MAX);
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![8, 9, 10, 11]);
        let ids: Vec<&str> = tail.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, vec!["r7", "r8", "r9", "r10"]);
    }

    #[test]
    fn tail_returns_newest_oldest_first() {
        let j = Journal::with_capacity(8);
        for i in 0..5 {
            j.record(entry(&format!("r{i}"), "ok"));
        }
        let tail = j.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].id, "r3");
        assert_eq!(tail[1].id, "r4");
        assert_eq!(j.tail(0).len(), 0);
    }

    #[test]
    fn reset_clears_entries_and_sequence() {
        let j = Journal::with_capacity(2);
        j.record(entry("a", "ok"));
        assert!(!j.is_empty());
        j.reset();
        assert!(j.is_empty());
        assert_eq!(j.recorded(), 0);
        assert_eq!(j.record(entry("b", "ok")), 1);
    }

    #[test]
    fn entry_json_shape() {
        let mut e = entry("r1", "degraded");
        e.seq = 7;
        assert_eq!(
            e.to_json(),
            concat!(
                r#"{"seq":7,"id":"r1","outcome":"degraded","queue_wait_secs":0.25,"#,
                r#""total_secs":1.5,"rung":1,"threads":2,"phases":{"transform":1}}"#
            )
        );
    }

    #[test]
    fn entry_json_carries_session_when_set() {
        let mut e = entry("r1", "ok");
        e.seq = 7;
        e.session = Some("00c0ffee00c0ffee".to_string());
        assert_eq!(
            e.to_json(),
            concat!(
                r#"{"seq":7,"id":"r1","outcome":"ok","session":"00c0ffee00c0ffee","#,
                r#""queue_wait_secs":0.25,"total_secs":1.5,"rung":1,"threads":2,"#,
                r#""phases":{"transform":1}}"#
            )
        );
    }

    #[test]
    fn export_jsonl_is_one_object_per_line() {
        let j = Journal::with_capacity(4);
        j.record(entry("a", "ok"));
        j.record(entry("b", "deadline_exceeded"));
        let text = j.export_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"deadline_exceeded\""));
    }
}
