//! The metric registry: named counters, gauges, and log-scale histograms,
//! plus an ordered event log for convergence series.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::json::{self, Obj};

/// Number of histogram buckets: one for zero, one per power of two up to
/// `2⁶³`, and a final bucket covering `[2⁶³, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram over `u64` values with fixed power-of-two bucket edges.
///
/// Bucket 0 holds exactly the value 0; bucket `i ≥ 1` holds the range
/// `[2^(i−1), 2^i − 1]` (the final bucket caps at `u64::MAX`). Log-scale
/// buckets give ~2× relative resolution over the full 64-bit range with a
/// fixed 65-slot footprint — the standard trade for latency-style data.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    /// Saturating sum of recorded values.
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The inclusive upper edge of bucket `i`.
    pub fn bucket_upper_edge(i: usize) -> u64 {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
        if i == 0 {
            0
        } else if i == HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        // A saturating sum keeps the mean meaningful for realistic inputs
        // and merely pins it at the ceiling for adversarial ones.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper-edge estimate of the `q`-quantile (`0 ≤ q ≤ 1`): the upper
    /// edge of the first bucket whose cumulative count reaches `q·n`.
    pub fn quantile_upper_edge(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper_edge(i);
            }
        }
        u64::MAX
    }
}

/// One recorded event: a named JSON object, kept in insertion order.
///
/// Events carry per-iteration series (e.g. the glasso sweep objective) that
/// scalar metrics cannot: a gauge only remembers its last value.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event name, e.g. `"fdx.glasso.sweep"`.
    pub name: String,
    /// Field key/value pairs, in recording order.
    pub fields: Vec<(String, Field)>,
}

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Float.
    F(f64),
    /// Boolean.
    B(bool),
    /// String.
    S(String),
}

impl Field {
    /// Serializes the field value as JSON.
    pub fn to_json(&self) -> String {
        match self {
            Field::U(v) => v.to_string(),
            Field::I(v) => v.to_string(),
            Field::F(v) => json::fmt_f64(*v),
            Field::B(v) => v.to_string(),
            Field::S(v) => format!("\"{}\"", json::escape(v)),
        }
    }
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U(v)
    }
}
impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U(v as u64)
    }
}
impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I(v)
    }
}
impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F(v)
    }
}
impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::B(v)
    }
}
impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::S(v.to_string())
    }
}
impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::S(v)
    }
}

/// A point-in-time copy of a registry's contents, with deterministic
/// (name-sorted) metric order and insertion-ordered events.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, count, sum, buckets)` histograms, sorted by name.
    pub histograms: Vec<(String, u64, u64, [u64; HISTOGRAM_BUCKETS])>,
    /// Events in recording order.
    pub events: Vec<Event>,
}

/// Percentile summary of one histogram inside a [`Snapshot`], in the
/// histogram's recorded unit. Quantiles are bucket upper-edge estimates
/// ([`Histogram::quantile_upper_edge`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Mean observation (0 when empty).
    pub mean: f64,
    /// Median upper-edge estimate.
    pub p50: u64,
    /// 95th-percentile upper-edge estimate.
    pub p95: u64,
    /// 99th-percentile upper-edge estimate.
    pub p99: u64,
}

/// Upper-edge estimate of the `q`-quantile of a snapshotted bucket array:
/// the upper edge of the first bucket whose cumulative count reaches `q·n`.
pub fn quantile_from_buckets(buckets: &[u64; HISTOGRAM_BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return Histogram::bucket_upper_edge(i);
        }
    }
    u64::MAX
}

impl Snapshot {
    /// The value of the named counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The value of the named gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Percentile summary of the named histogram, if recorded.
    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        let i = self
            .histograms
            .binary_search_by(|(n, ..)| n.as_str().cmp(name))
            .ok()?;
        let (_, count, sum, buckets) = &self.histograms[i];
        Some(HistogramSummary {
            count: *count,
            sum: *sum,
            mean: if *count == 0 {
                0.0
            } else {
                *sum as f64 / *count as f64
            },
            p50: quantile_from_buckets(buckets, *count, 0.5),
            p95: quantile_from_buckets(buckets, *count, 0.95),
            p99: quantile_from_buckets(buckets, *count, 0.99),
        })
    }
}

/// A named-metric registry.
///
/// Most callers use the process-wide [`Registry::global`] through the
/// free-function helpers ([`counter_add`], [`gauge_set`], [`observe`],
/// [`event`]), which are no-ops while [`crate::enabled`] is false. Handles
/// returned by [`Registry::counter`] et al. are `Arc`s: hot paths can
/// resolve a name once and update lock-free afterwards.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: Mutex<Vec<Event>>,
}

/// Locks a registry mutex, recovering from poisoning. Every map in the
/// registry stays internally consistent under panic (insertions are the
/// only mutations and complete atomically from the map's perspective), so
/// observability must keep working in threads that outlive a panicking one
/// rather than cascade the failure.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// Creates an empty registry (tests; production code uses
    /// [`Registry::global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns (registering if needed) the counter with this name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock_recover(&self.counters);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Returns (registering if needed) the gauge with this name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock_recover(&self.gauges);
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Returns (registering if needed) the histogram with this name.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock_recover(&self.histograms);
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Appends an event.
    pub fn push_event(&self, name: &str, fields: &[(&str, Field)]) {
        let ev = Event {
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        lock_recover(&self.events).push(ev);
    }

    /// Copies out all metrics and events.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lock_recover(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock_recover(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock_recover(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.count(), v.sum(), v.bucket_counts()))
                .collect(),
            events: lock_recover(&self.events).clone(),
        }
    }

    /// Removes every metric and event (a fresh run boundary).
    pub fn reset(&self) {
        lock_recover(&self.counters).clear();
        lock_recover(&self.gauges).clear();
        lock_recover(&self.histograms).clear();
        lock_recover(&self.events).clear();
    }
}

/// Adds to a global counter. No-op while recording is disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if crate::enabled() {
        Registry::global().counter(name).add(delta);
    }
}

/// Sets a global gauge. No-op while recording is disabled.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if crate::enabled() {
        Registry::global().gauge(name).set(v);
    }
}

/// Records into a global histogram. No-op while recording is disabled.
#[inline]
pub fn observe(name: &str, v: u64) {
    if crate::enabled() {
        Registry::global().histogram(name).record(v);
    }
}

/// Records a global event. No-op while recording is disabled.
#[inline]
pub fn event(name: &str, fields: &[(&str, Field)]) {
    if crate::enabled() {
        Registry::global().push_event(name, fields);
    }
}

impl Event {
    /// Serializes the event as one JSON object:
    /// `{"kind":"event","name":…,<fields>}`.
    pub fn to_json(&self) -> String {
        let mut obj = Obj::new().str_("kind", "event").str_("name", &self.name);
        for (k, v) in &self.fields {
            obj = obj.raw(k, &v.to_json());
        }
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_edges_cover_the_domain() {
        assert_eq!(Histogram::bucket_upper_edge(0), 0);
        assert_eq!(Histogram::bucket_upper_edge(1), 1);
        assert_eq!(Histogram::bucket_upper_edge(2), 3);
        assert_eq!(Histogram::bucket_upper_edge(64), u64::MAX);
        // Every value's bucket edge is >= the value.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX / 2, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(Histogram::bucket_upper_edge(i) >= v, "v = {v}");
            if i > 0 {
                assert!(Histogram::bucket_upper_edge(i - 1) < v, "v = {v}");
            }
        }
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 1, 2, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 104);
        assert!((h.mean() - 26.0).abs() < 1e-12);
        // Half the mass sits in bucket 1 ([1,1]).
        assert_eq!(h.quantile_upper_edge(0.5), 1);
        assert_eq!(h.quantile_upper_edge(1.0), 127);
        let empty = Histogram::default();
        assert_eq!(empty.quantile_upper_edge(0.5), 0);
    }

    #[test]
    fn registry_registers_once() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.counter("x").get(), 5);
        r.gauge("g").set(1.5);
        assert_eq!(r.gauge("g").get(), 1.5);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("x".to_string(), 5)]);
        assert_eq!(snap.gauges, vec![("g".to_string(), 1.5)]);
        r.reset();
        assert!(r.snapshot().counters.is_empty());
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let r = Registry::new();
        r.counter("b.count").add(3);
        r.counter("a.count").add(1);
        r.gauge("z.gap").set(0.25);
        let h = r.histogram("span.us");
        for v in [1u64, 1, 2, 100] {
            h.record(v);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.count"), Some(1));
        assert_eq!(snap.counter("b.count"), Some(3));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("z.gap"), Some(0.25));
        assert_eq!(snap.gauge("missing"), None);
        let s = snap.histogram_summary("span.us").unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 104);
        assert!((s.mean - 26.0).abs() < 1e-12);
        assert_eq!(s.p50, 1);
        assert_eq!(s.p99, 127);
        assert!(s.p95 >= s.p50 && s.p99 >= s.p95);
        assert!(snap.histogram_summary("missing").is_none());
    }

    #[test]
    fn event_serialization() {
        let r = Registry::new();
        r.push_event(
            "glasso.sweep",
            &[("iter", Field::U(1)), ("objective", Field::F(2.5))],
        );
        let snap = r.snapshot();
        assert_eq!(
            snap.events[0].to_json(),
            r#"{"kind":"event","name":"glasso.sweep","iter":1,"objective":2.5}"#
        );
    }
}
