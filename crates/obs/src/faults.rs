//! Deterministic fault injection for resilience testing.
//!
//! The FDX pipeline promises graceful degradation (a recovery ladder, phase
//! guards, a wall-clock budget), but the failure paths it protects against —
//! a non-converged glasso, a NaN-poisoned covariance, a non-PD factorization
//! input — are hard to reach from well-formed data. This module provides
//! **named injection points** that tests arm explicitly; production code
//! queries them at the exact site where the real failure would surface.
//!
//! Design constraints (DESIGN.md §9):
//!
//! * **Zero dependencies, zero randomness, no env vars.** A fault fires iff
//!   a test armed it on the current thread; runs are exactly reproducible.
//! * **Thread-local arming.** The standard test harness runs each `#[test]`
//!   on its own thread, so parallel tests cannot see each other's faults.
//!   All FDX injection points sit on the pipeline's driving thread.
//! * **Free when disarmed.** [`fire`] and [`skew_secs`] first consult one
//!   process-wide relaxed atomic counting armed faults; while nothing is
//!   armed anywhere they reduce to a single atomic load, like the metric
//!   gates in this crate.
//!
//! Arming returns an RAII [`ArmedFault`] guard; dropping it disarms. Faults
//! armed with [`arm_times`] are budgeted: each [`fire`] consumes one charge,
//! so a test can fail the first attempt of a retry loop and let the retry
//! succeed.
//!
//! Injection points are plain dotted names owned by the code that checks
//! them; the pipeline's registry lives in `fdx_core::resilience` docs. The
//! conventional points are `glasso.force_no_converge`, `covariance.inject_nan`,
//! `udut.force_not_pd`, `inversion.force_fail`, and `clock.skew`; the
//! chunked-ingestion path adds `ingest.short_read`, `ingest.corrupt_chunk`,
//! `ingest.disk_stall`, and `ingest.oom_at_chunk` (DESIGN.md §14).
//!
//! ```
//! use fdx_obs::faults;
//! assert!(!faults::fire("glasso.force_no_converge"));
//! {
//!     let _f = faults::arm("glasso.force_no_converge");
//!     assert!(faults::fire("glasso.force_no_converge"));
//! }
//! assert!(!faults::fire("glasso.force_no_converge"));
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide count of armed faults (across all threads). The disarmed
/// fast path of [`fire`]/[`value`] is one relaxed load of this counter.
static ARMED_ANYWHERE: AtomicUsize = AtomicUsize::new(0);

struct FaultState {
    /// Remaining charges; `u64::MAX` means unlimited.
    remaining: u64,
    /// Optional payload (e.g. fake seconds for `clock.skew`).
    value: f64,
}

thread_local! {
    static FAULTS: RefCell<HashMap<&'static str, FaultState>> =
        RefCell::new(HashMap::new());
}

/// RAII handle to an armed fault; dropping it disarms the injection point.
///
/// Re-arming a name that is already armed on this thread replaces its state;
/// whichever guard drops last removes the entry.
#[derive(Debug)]
pub struct ArmedFault {
    name: &'static str,
}

fn arm_state(name: &'static str, state: FaultState) -> ArmedFault {
    FAULTS.with(|f| f.borrow_mut().insert(name, state));
    ARMED_ANYWHERE.fetch_add(1, Ordering::Relaxed);
    ArmedFault { name }
}

/// Arms `name` on the current thread with unlimited charges.
pub fn arm(name: &'static str) -> ArmedFault {
    arm_times(name, u64::MAX)
}

/// Arms `name` with a fixed number of charges: the first `times` calls to
/// [`fire`] return `true`, later ones `false`. `arm_times(p, 1)` fails
/// exactly one attempt of a retry loop.
pub fn arm_times(name: &'static str, times: u64) -> ArmedFault {
    arm_state(
        name,
        FaultState {
            remaining: times,
            value: 0.0,
        },
    )
}

/// Arms `name` with an `f64` payload (readable via [`value`]) and unlimited
/// charges. Used by `clock.skew` to advance the budget clock without
/// sleeping.
pub fn arm_value(name: &'static str, value: f64) -> ArmedFault {
    arm_state(
        name,
        FaultState {
            remaining: u64::MAX,
            value,
        },
    )
}

impl Drop for ArmedFault {
    fn drop(&mut self) {
        FAULTS.with(|f| f.borrow_mut().remove(self.name));
        ARMED_ANYWHERE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Queries (and consumes one charge of) the injection point `name`.
///
/// Returns `true` iff the fault is armed on this thread with charges left.
/// While no fault is armed anywhere this is a single relaxed atomic load.
#[inline]
pub fn fire(name: &str) -> bool {
    if ARMED_ANYWHERE.load(Ordering::Relaxed) == 0 {
        return false;
    }
    FAULTS.with(|f| {
        let mut map = f.borrow_mut();
        match map.get_mut(name) {
            Some(state) if state.remaining > 0 => {
                if state.remaining != u64::MAX {
                    state.remaining -= 1;
                }
                true
            }
            _ => false,
        }
    })
}

/// Reads the payload of an armed fault without consuming charges; `None`
/// when `name` is not armed on this thread (or is out of charges).
#[inline]
pub fn value(name: &str) -> Option<f64> {
    if ARMED_ANYWHERE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    FAULTS.with(|f| {
        f.borrow()
            .get(name)
            .filter(|s| s.remaining > 0)
            .map(|s| s.value)
    })
}

/// The `clock.skew` payload, or `0.0` when disarmed — added to every budget
/// clock reading so tests can exhaust a wall-clock budget deterministically.
#[inline]
pub fn skew_secs() -> f64 {
    value("clock.skew").unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_faults_never_fire() {
        assert!(!fire("nope"));
        assert_eq!(value("nope"), None);
        assert_eq!(skew_secs(), 0.0);
    }

    #[test]
    fn arm_and_drop() {
        {
            let _f = arm("t.basic");
            assert!(fire("t.basic"));
            assert!(fire("t.basic"), "unlimited charges");
        }
        assert!(!fire("t.basic"), "drop disarms");
    }

    #[test]
    fn charges_are_consumed() {
        let _f = arm_times("t.twice", 2);
        assert!(fire("t.twice"));
        assert!(fire("t.twice"));
        assert!(!fire("t.twice"), "charges exhausted");
        assert_eq!(value("t.twice"), None, "exhausted fault reads as disarmed");
    }

    #[test]
    fn payload_is_not_consumed() {
        let _f = arm_value("t.payload", 12.5);
        assert_eq!(value("t.payload"), Some(12.5));
        assert_eq!(value("t.payload"), Some(12.5));
        assert!(fire("t.payload"), "value faults also fire");
    }

    #[test]
    fn clock_skew_helper() {
        assert_eq!(skew_secs(), 0.0);
        let _f = arm_value("clock.skew", 3600.0);
        assert_eq!(skew_secs(), 3600.0);
    }

    #[test]
    fn rearming_replaces_state() {
        let _a = arm_times("t.rearm", 1);
        let _b = arm_times("t.rearm", 3);
        assert!(fire("t.rearm"));
        assert!(fire("t.rearm"));
        assert!(fire("t.rearm"));
        assert!(!fire("t.rearm"));
    }

    #[test]
    fn faults_are_thread_local() {
        let _f = arm("t.local");
        let seen = std::thread::spawn(|| fire("t.local")).join().unwrap();
        assert!(!seen, "other threads must not observe this thread's faults");
        assert!(fire("t.local"));
    }
}
