//! A minimal, deterministic JSON writer.
//!
//! The workspace's dependency policy (DESIGN.md §5) admits `serde` but not
//! `serde_json`, so the exporters hand-roll their output. The grammar needed
//! is tiny — objects, arrays, strings, numbers, booleans — and determinism
//! matters more than generality: identical runs must produce byte-identical
//! JSON lines so golden tests and diff-based bench comparisons work.

/// Escapes a string for inclusion inside a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value. Non-finite values have no JSON number
/// representation and are emitted as `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest-roundtrip formatting is deterministic.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An incremental JSON object builder: `Obj::new().str_("k", "v").finish()`.
#[derive(Debug, Clone)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str_(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_(mut self, k: &str, v: u64) -> Obj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64_(mut self, k: &str, v: i64) -> Obj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` for non-finite values).
    pub fn f64_(mut self, k: &str, v: f64) -> Obj {
        self.key(k);
        self.buf.push_str(&fmt_f64(v));
        self
    }

    /// Adds a boolean field.
    pub fn bool_(mut self, k: &str, v: bool) -> Obj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serializes an iterator of already-serialized JSON values as an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn floats() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn builds_objects() {
        let s = Obj::new()
            .str_("name", "x")
            .u64_("n", 3)
            .f64_("v", 0.5)
            .bool_("ok", true)
            .raw("arr", &array(vec!["1".into(), "2".into()]))
            .finish();
        assert_eq!(s, r#"{"name":"x","n":3,"v":0.5,"ok":true,"arr":[1,2]}"#);
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(array(Vec::new()), "[]");
    }
}
