//! Exporters: human-readable text summary, phase-tree rendering, and
//! deterministic JSON-lines — plus the crash-safe file writer every
//! exporter output goes through.

use crate::json::{self, Obj};
use crate::registry::{quantile_from_buckets, Snapshot};
use crate::span::PhaseNode;
use crate::Histogram;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Crash-safe file write: the contents land in a temp file *in the same
/// directory* and are atomically renamed over `path`, so a reader (or a
/// process killed mid-write) never observes truncated output. Same-dir
/// placement keeps the rename on one filesystem, which is what makes it
/// atomic. On failure the temp file is cleaned up best-effort.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    write_atomic_bytes(path, contents.as_bytes())
}

/// Byte-level [`write_atomic`]: same temp-file + rename protocol, for
/// binary artifacts (snapshot records) that are not UTF-8.
pub fn write_atomic_bytes(path: &Path, contents: &[u8]) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let base = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    // pid + process-wide sequence keeps concurrent writers (or a stale
    // temp from a killed run) from colliding.
    let tmp = dir.join(format!(
        ".{base}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Renders a snapshot as a human-readable summary: counters, gauges, then
/// histograms (count / mean / p50 / p99 upper-edge estimates), each section
/// name-sorted.
pub fn render_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<40} {v}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<40} {v:.6}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms (us):\n");
        for (name, count, sum, buckets) in &snap.histograms {
            let mean = if *count == 0 {
                0.0
            } else {
                *sum as f64 / *count as f64
            };
            out.push_str(&format!(
                "  {name:<40} count {count}  mean {mean:.1}  p50<={}  p99<={}\n",
                quantile_from_buckets(buckets, *count, 0.5),
                quantile_from_buckets(buckets, *count, 0.99),
            ));
        }
    }
    if !snap.events.is_empty() {
        out.push_str(&format!("events: {}\n", snap.events.len()));
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

/// Serializes a snapshot as deterministic JSON-lines: one object per
/// counter, gauge, and histogram (name-sorted), then one per event
/// (recording order). Histogram buckets are emitted sparsely as
/// `{"le":upper_edge,"count":n}` for non-empty buckets only.
pub fn export_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(
            &Obj::new()
                .str_("kind", "counter")
                .str_("name", name)
                .u64_("value", *v)
                .finish(),
        );
        out.push('\n');
    }
    for (name, v) in &snap.gauges {
        out.push_str(
            &Obj::new()
                .str_("kind", "gauge")
                .str_("name", name)
                .f64_("value", *v)
                .finish(),
        );
        out.push('\n');
    }
    for (name, count, sum, buckets) in &snap.histograms {
        let bucket_objs = buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Obj::new()
                    .u64_("le", Histogram::bucket_upper_edge(i))
                    .u64_("count", c)
                    .finish()
            });
        out.push_str(
            &Obj::new()
                .str_("kind", "histogram")
                .str_("name", name)
                .str_("unit", "us")
                .u64_("count", *count)
                .u64_("sum", *sum)
                .raw("buckets", &json::array(bucket_objs.collect::<Vec<_>>()))
                .finish(),
        );
        out.push('\n');
    }
    for ev in &snap.events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// Renders a phase-tree forest as an indented text tree with durations,
/// percentages of the root, and merge counts.
pub fn render_phase_tree(roots: &[PhaseNode]) -> String {
    let mut out = String::new();
    for root in roots {
        let total = root.secs.max(1e-12);
        render_node(root, total, 0, &mut out);
    }
    if out.is_empty() {
        out.push_str("(no spans recorded)\n");
    }
    out
}

fn render_node(node: &PhaseNode, root_secs: f64, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", node.name);
    let times = if node.count > 1 {
        format!("  (x{})", node.count)
    } else {
        String::new()
    };
    out.push_str(&format!(
        "{label:<44} {:>9.4}s {:>6.1}%{times}\n",
        node.secs,
        100.0 * node.secs / root_secs,
    ));
    for child in &node.children {
        render_node(child, root_secs, depth + 1, out);
    }
    // Show unattributed time when children cover enough to make it
    // interesting.
    if !node.children.is_empty() {
        let self_secs = node.self_secs();
        if self_secs > 1e-9 {
            let indent = "  ".repeat(depth + 1);
            out.push_str(&format!(
                "{:<44} {self_secs:>9.4}s {:>6.1}%\n",
                format!("{indent}(self)"),
                100.0 * self_secs / root_secs,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Event, Field, Registry};

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("b.count").add(7);
        r.counter("a.count").add(3);
        r.gauge("z.gap").set(0.25);
        r.histogram("span.us").record(0);
        r.histogram("span.us").record(3);
        r.histogram("span.us").record(3);
        r.push_event("sweep", &[("iter", Field::U(1)), ("obj", Field::F(1.5))]);
        r.snapshot()
    }

    #[test]
    fn jsonl_is_deterministic_and_sorted() {
        let expected = concat!(
            r#"{"kind":"counter","name":"a.count","value":3}"#,
            "\n",
            r#"{"kind":"counter","name":"b.count","value":7}"#,
            "\n",
            r#"{"kind":"gauge","name":"z.gap","value":0.25}"#,
            "\n",
            r#"{"kind":"histogram","name":"span.us","unit":"us","count":3,"sum":6,"buckets":[{"le":0,"count":1},{"le":3,"count":2}]}"#,
            "\n",
            r#"{"kind":"event","name":"sweep","iter":1,"obj":1.5}"#,
            "\n",
        );
        assert_eq!(export_jsonl(&sample_snapshot()), expected);
        // Byte-identical across repeated snapshots.
        assert_eq!(export_jsonl(&sample_snapshot()), expected);
    }

    #[test]
    fn text_summary_mentions_everything() {
        let text = render_text(&sample_snapshot());
        assert!(text.contains("a.count"));
        assert!(text.contains("z.gap"));
        assert!(text.contains("span.us"));
        assert!(text.contains("events: 1"));
        assert_eq!(render_text(&Snapshot::default()), "(no metrics recorded)\n");
    }

    #[test]
    fn phase_tree_rendering() {
        let roots = vec![PhaseNode {
            name: "fdx.discover".into(),
            secs: 1.0,
            count: 1,
            children: vec![
                PhaseNode {
                    name: "fdx.transform".into(),
                    secs: 0.4,
                    count: 1,
                    children: Vec::new(),
                },
                PhaseNode {
                    name: "fdx.glasso".into(),
                    secs: 0.5,
                    count: 5,
                    children: Vec::new(),
                },
            ],
        }];
        let text = render_phase_tree(&roots);
        assert!(text.contains("fdx.discover"));
        assert!(text.contains("  fdx.transform"));
        assert!(text.contains("(x5)"));
        assert!(text.contains("(self)"));
        assert!(text.contains("40.0%"));
        assert_eq!(render_phase_tree(&[]), "(no spans recorded)\n");
    }

    #[test]
    fn write_atomic_replaces_a_partial_write() {
        let dir = std::env::temp_dir().join(format!("fdx-obs-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("metrics.jsonl");

        // Simulate a process killed mid-write: the target holds a
        // truncated JSONL line and a stale temp file is lying around.
        std::fs::write(&target, "{\"kind\":\"coun").unwrap();
        std::fs::write(dir.join(".metrics.jsonl.tmp.1.0"), "{\"ki").unwrap();

        let full = export_jsonl(&sample_snapshot());
        write_atomic(&target, &full).unwrap();
        assert_eq!(std::fs::read_to_string(&target).unwrap(), full);

        // No temp file from *this* write survives; each line is complete.
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(&format!(".tmp.{}", std::process::id())))
            .collect();
        assert!(leftovers.is_empty(), "stale temp files: {leftovers:?}");
        for line in std::fs::read_to_string(&target).unwrap().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_rejects_bare_directory_target() {
        let err = write_atomic(Path::new("/"), "x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn event_json_escapes_strings() {
        let ev = Event {
            name: "note".into(),
            fields: vec![("msg".to_string(), Field::S("a\"b".into()))],
        };
        assert_eq!(
            ev.to_json(),
            r#"{"kind":"event","name":"note","msg":"a\"b"}"#
        );
    }
}
