//! # fdx-obs — observability for the FDX pipeline
//!
//! The paper's evaluation is dominated by *where time and iterations go*:
//! Figure 6 splits total vs model runtime, Figure 7 scales with rows and
//! columns, and Tables 4–9 compare wall clock across methods. This crate is
//! the instrument panel those measurements flow through:
//!
//! * a global [`Registry`] of named **counters**, **gauges**, and
//!   **log-scale histograms** (fixed power-of-two bucket edges), plus an
//!   ordered **event log** for per-iteration convergence series,
//! * RAII **span timers** ([`Span::enter`]) that record nested wall clock
//!   into histograms and build a per-run [`PhaseNode`] tree,
//! * **exporters**: a human-readable text summary ([`render_text`]), a
//!   phase-tree renderer ([`render_phase_tree`]), and deterministic
//!   JSON-lines ([`export_jsonl`]) consumed by `fdx discover --metrics` and
//!   the `fdx-bench` binaries,
//! * deterministic **fault injection** ([`faults`]): named injection points
//!   armed thread-locally by resilience tests, a single relaxed atomic load
//!   when disarmed,
//! * a bounded **request journal** ([`journal`]): a ring buffer of the last
//!   N per-request outcomes, the substrate of the serve layer's live
//!   `stats` op,
//! * the canonical **metric-name registry** ([`metrics::METRIC_NAMES`]):
//!   every `fdx.*` name recorded anywhere in the workspace, enforced at
//!   lint time by rule FDX-L008.
//!
//! ## Cost model
//!
//! Recording is **off by default**. Every recording entry point first checks
//! a relaxed atomic flag ([`enabled`]); when the flag is clear the calls
//! reduce to a single atomic load, so instrumented code pays no measurable
//! cost (the acceptance bar is < 1%) unless a caller opted in with
//! [`set_enabled`]. [`Span`] additionally always captures its start instant
//! so callers can reuse it for *budget* checks ([`Span::elapsed_secs`])
//! whether or not recording is on — this is what lets the baselines route
//! their time-budget logic and their telemetry through one code path.
//!
//! ## Example
//!
//! ```
//! fdx_obs::set_enabled(true);
//! {
//!     let _outer = fdx_obs::Span::enter("pipeline");
//!     let _inner = fdx_obs::Span::enter("pipeline.step");
//!     fdx_obs::counter_add("pipeline.items", 42);
//! }
//! let trace = fdx_obs::take_trace();
//! assert_eq!(trace[0].name, "pipeline");
//! assert_eq!(trace[0].children[0].name, "pipeline.step");
//! let snap = fdx_obs::Registry::global().snapshot();
//! assert!(fdx_obs::export_jsonl(&snap).contains("pipeline.items"));
//! fdx_obs::set_enabled(false);
//! fdx_obs::Registry::global().reset();
//! ```

pub mod export;
pub mod faults;
pub mod journal;
pub mod json;
pub mod metrics;
mod registry;
mod span;

pub use export::{export_jsonl, render_phase_tree, render_text, write_atomic, write_atomic_bytes};
pub use registry::{
    counter_add, event, gauge_set, observe, quantile_from_buckets, Counter, Field, Gauge,
    Histogram, HistogramSummary, Registry, Snapshot, HISTOGRAM_BUCKETS,
};
pub use span::{take_trace, PhaseNode, Span, Stopwatch};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric recording is globally enabled.
///
/// A relaxed load: cheap enough to gate every recording call site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables metric recording.
///
/// Disabling does not clear previously recorded data; see
/// [`Registry::reset`] and [`take_trace`] for that.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}
