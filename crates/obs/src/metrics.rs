//! The canonical registry of every `fdx.*` metric name.
//!
//! Metric names are stringly-typed at the call sites (`counter_add`,
//! `gauge_set`, `observe`, `event`, `Span::enter`), which makes a typo'd or
//! orphaned name invisible until someone stares at a snapshot. This module
//! is the single source of truth: every `fdx.*` name the workspace records
//! must appear in [`METRIC_NAMES`], and lint rule FDX-L008 (`fdx-analyze`)
//! rejects any `fdx.*` literal passed to a recording entry point that is
//! not listed here. Names are kept sorted so membership is a binary search
//! (and the diff of an addition is one line).
//!
//! Span names double as histogram names (a closing span records its
//! duration into the histogram of the same name), so they are listed too.

/// Every `fdx.*` metric name the workspace records, sorted.
///
/// Grouped by owner: pipeline phase spans (`fdx-core`), FD generation,
/// glasso, chunked ingestion (`fdx-data`), ordering/factorization, the
/// parallel runtime, resilience, and the serve layer.
pub const METRIC_NAMES: &[&str] = &[
    "fdx.covariance",
    "fdx.discover",
    "fdx.factorization",
    "fdx.generation",
    "fdx.generation.candidate_edges",
    "fdx.generation.kept_edges",
    "fdx.glasso",
    "fdx.glasso.active_set",
    "fdx.glasso.components",
    "fdx.glasso.duality_gap",
    "fdx.glasso.iterations",
    "fdx.glasso.largest_component",
    "fdx.glasso.not_converged",
    "fdx.glasso.objective",
    "fdx.glasso.ridge_escalations",
    "fdx.glasso.summary",
    "fdx.glasso.sweep",
    "fdx.glasso.sweeps",
    "fdx.ingest",
    "fdx.ingest.chunks",
    "fdx.ingest.merge",
    "fdx.ingest.merge_ms",
    "fdx.ingest.peak_bytes",
    "fdx.ingest.quarantined",
    "fdx.ingest.rows",
    "fdx.ingest.sampled_runs",
    "fdx.order",
    "fdx.order.support_edges",
    "fdx.order.vertices",
    "fdx.ordering",
    "fdx.par.regions",
    "fdx.par.tasks",
    "fdx.par.threads",
    "fdx.resilience.budget_exceeded",
    "fdx.resilience.degraded_runs",
    "fdx.resilience.guard_trips",
    "fdx.resilience.recovery",
    "fdx.resilience.rung",
    "fdx.serve.abandoned",
    "fdx.serve.bad_request",
    "fdx.serve.completed",
    "fdx.serve.deadline_exceeded",
    "fdx.serve.panics",
    "fdx.serve.queue_depth",
    "fdx.serve.queue_wait_ms",
    "fdx.serve.requests",
    "fdx.serve.service_ms",
    "fdx.serve.shed",
    "fdx.serve.stats",
    "fdx.session.cache_hits",
    "fdx.session.cache_misses",
    "fdx.session.closes",
    "fdx.session.conn_rejected",
    "fdx.session.evictions",
    "fdx.session.opens",
    "fdx.session.resident_bytes",
    "fdx.session.uploads",
    "fdx.session.warm_starts",
    "fdx.snapshot.quarantined",
    "fdx.snapshot.recovered",
    "fdx.snapshot.writes",
    "fdx.structure",
    "fdx.transform",
    "fdx.udut.fill_nnz",
    "fdx.udut.max_pivot",
    "fdx.udut.min_pivot",
    "fdx.udut.ridge_retries",
    "fdx.validate.partition_hits",
    "fdx.validate.partition_misses",
    "fdx.validate.repair_rounds",
    "fdx.validate.score_calls",
    "fdx.validate.score_memo_hits",
    "fdx.validation",
    "fdx.validation.repair",
    "fdx.validation.scoring",
];

/// Whether `name` is a registered `fdx.*` metric name.
pub fn is_registered(name: &str) -> bool {
    METRIC_NAMES.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sorted_and_unique() {
        for w in METRIC_NAMES.windows(2) {
            assert!(
                w[0] < w[1],
                "{:?} must sort strictly before {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn names_all_carry_the_fdx_prefix() {
        for name in METRIC_NAMES {
            assert!(name.starts_with("fdx."), "{name}");
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert!(is_registered("fdx.discover"));
        assert!(is_registered("fdx.serve.service_ms"));
        assert!(!is_registered("fdx.serve.queue_wait_us"), "retired name");
        assert!(!is_registered("fdx.typo"));
    }
}
