//! RAII span timers and the per-run phase tree.
//!
//! A [`Span`] measures the wall clock between its creation and drop. While
//! recording is enabled ([`crate::enabled`]), closing a span does two
//! things: it records the duration (in microseconds) into the global
//! histogram named after the span, and it merges a node into the calling
//! thread's **phase tree** — same-named siblings accumulate, so a span
//! entered once per glasso sweep shows up as one node with `count = sweeps`.
//!
//! The tree is thread-local: each thread accumulates its own forest, and
//! [`take_trace`] drains the calling thread's completed roots. The FDX
//! pipeline runs its phase structure on the driving thread, so this is the
//! tree `fdx discover --trace` prints.

use std::cell::RefCell;
use std::time::Instant;

use crate::json::{self, Obj};
use crate::registry::observe;

/// One node of the phase tree: a named phase, its total wall clock, how
/// many spans merged into it, and its child phases.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseNode {
    /// Span name.
    pub name: String,
    /// Total seconds across all merged spans.
    pub secs: f64,
    /// Number of spans merged into this node.
    pub count: u64,
    /// Child phases, in first-entered order.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    /// Seconds not attributed to any child phase.
    pub fn self_secs(&self) -> f64 {
        let child_sum: f64 = self.children.iter().map(|c| c.secs).sum();
        (self.secs - child_sum).max(0.0)
    }

    /// Serializes the subtree as one JSON object.
    pub fn to_json(&self) -> String {
        Obj::new()
            .str_("name", &self.name)
            .f64_("secs", self.secs)
            .u64_("count", self.count)
            .raw(
                "children",
                &json::array(self.children.iter().map(PhaseNode::to_json)),
            )
            .finish()
    }
}

/// Merges `node` into `siblings`: accumulate into a same-named sibling
/// (recursively merging children) or append.
fn merge_node(siblings: &mut Vec<PhaseNode>, node: PhaseNode) {
    if let Some(existing) = siblings.iter_mut().find(|s| s.name == node.name) {
        existing.secs += node.secs;
        existing.count += node.count;
        for child in node.children {
            merge_node(&mut existing.children, child);
        }
    } else {
        siblings.push(node);
    }
}

/// An open (not yet closed) span on the thread-local stack.
struct Frame {
    name: String,
    start: Instant,
    children: Vec<PhaseNode>,
}

#[derive(Default)]
struct Trace {
    stack: Vec<Frame>,
    roots: Vec<PhaseNode>,
}

thread_local! {
    static TRACE: RefCell<Trace> = RefCell::new(Trace::default());
}

/// Drains the calling thread's completed phase-tree roots.
///
/// Spans still open on this thread are left untouched; they will appear in
/// a later `take_trace` once closed.
pub fn take_trace() -> Vec<PhaseNode> {
    TRACE.with(|t| std::mem::take(&mut t.borrow_mut().roots))
}

/// An RAII span timer. See the module docs.
///
/// The start instant is always captured — even with recording disabled —
/// so [`Span::elapsed_secs`] can double as the budget clock in code that
/// previously kept a separate `Instant::now()`.
#[derive(Debug)]
pub struct Span {
    start: Instant,
    /// `Some(depth)` iff this span opened a frame on the TLS stack.
    recording: Option<(String, usize)>,
}

impl Span {
    /// Enters a span with a static name.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        Span::enter_named(name.to_string())
    }

    /// Enters a span with a runtime-built name.
    pub fn enter_named(name: String) -> Span {
        let start = Instant::now();
        if !crate::enabled() {
            return Span {
                start,
                recording: None,
            };
        }
        let depth = TRACE.with(|t| {
            let mut tr = t.borrow_mut();
            tr.stack.push(Frame {
                name: name.clone(),
                start,
                children: Vec::new(),
            });
            tr.stack.len() - 1
        });
        Span {
            start,
            recording: Some((name, depth)),
        }
    }

    /// Seconds since the span was entered.
    #[inline]
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// A plain start-instant timer with no registry or phase-tree side effects.
///
/// Unlike [`Span`], a `Stopwatch` records nothing on drop and touches no
/// thread-local state, so it is safe to construct on one thread and read on
/// another. This is what the serve queue uses to measure queue wait: the
/// watch starts on the acceptor thread and is read on the worker thread (a
/// `Span` moved like that would leak its open frame on the origin thread's
/// stack and pop frames it does not own on the destination's). It is also
/// the sanctioned wall clock for code outside `crates/obs` (lint rule
/// FDX-L003 bans raw `Instant::now()` elsewhere).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the watch now.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds since the watch was started.
    #[inline]
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((name, depth)) = self.recording.take() else {
            return;
        };
        let now = Instant::now();
        // Record the span duration into the global histogram regardless of
        // the tree state (the enabled flag may have flipped mid-span; keep
        // the histogram and the tree consistent with each other by always
        // recording both here).
        let micros = now
            .duration_since(self.start)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        observe(&name, micros);
        TRACE.with(|t| {
            let mut tr = t.borrow_mut();
            // Close any spans entered after this one that were not dropped
            // in LIFO order (e.g. moved out and dropped late), then close
            // our own frame; if our frame is already gone, do nothing.
            while tr.stack.len() > depth {
                // fdx-allow: L001 loop condition guarantees the stack is non-empty
                let frame = tr.stack.pop().expect("len > depth >= 0");
                let node = PhaseNode {
                    name: frame.name,
                    secs: now.duration_since(frame.start).as_secs_f64(),
                    count: 1,
                    children: frame.children,
                };
                let tr = &mut *tr;
                match tr.stack.last_mut() {
                    Some(parent) => merge_node(&mut parent.children, node),
                    None => merge_node(&mut tr.roots, node),
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enabled flag is process-global while the test harness runs tests
    /// on parallel threads; serialize every test that flips it.
    static ENABLED_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_recording<R>(f: impl FnOnce() -> R) -> R {
        let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        let out = f();
        crate::set_enabled(false);
        out
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(false);
        let s = Span::enter("nope");
        assert!(s.elapsed_secs() >= 0.0);
        drop(s);
        assert!(take_trace().is_empty());
    }

    #[test]
    fn nested_spans_build_a_tree() {
        let trace = with_recording(|| {
            let _t = take_trace(); // isolate from other tests on this thread
            {
                let _outer = Span::enter("outer");
                {
                    let _inner = Span::enter("inner");
                }
                {
                    let _inner = Span::enter("inner");
                }
                let _other = Span::enter("other");
            }
            take_trace()
        });
        assert_eq!(trace.len(), 1);
        let outer = &trace[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[0].count, 2, "same-name siblings merge");
        assert_eq!(outer.children[1].name, "other");
        assert!(outer.secs >= outer.children.iter().map(|c| c.secs).sum::<f64>());
        assert!(outer.self_secs() >= 0.0);
    }

    #[test]
    fn out_of_order_drop_is_tolerated() {
        let trace = with_recording(|| {
            let _t = take_trace();
            let a = Span::enter("a");
            let b = Span::enter("b");
            // Dropping the outer span first force-closes the inner frame.
            drop(a);
            drop(b);
            take_trace()
        });
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].name, "a");
        assert_eq!(trace[0].children.len(), 1);
        assert_eq!(trace[0].children[0].name, "b");
    }

    #[test]
    fn stopwatch_is_inert_and_cross_thread_safe() {
        let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        let _t = take_trace();
        let w = Stopwatch::start();
        // Reading a stopwatch started on another thread must not disturb
        // this thread's phase tree.
        let elapsed = std::thread::spawn(move || w.elapsed_secs())
            .join()
            .unwrap_or_else(|_| panic!("stopwatch thread"));
        assert!(elapsed >= 0.0);
        assert!(take_trace().is_empty(), "stopwatch must not record");
        crate::set_enabled(false);
    }

    #[test]
    fn phase_node_json_shape() {
        let node = PhaseNode {
            name: "x".into(),
            secs: 0.5,
            count: 2,
            children: vec![PhaseNode {
                name: "y".into(),
                secs: 0.25,
                count: 1,
                children: Vec::new(),
            }],
        };
        assert_eq!(
            node.to_json(),
            r#"{"name":"x","secs":0.5,"count":2,"children":[{"name":"y","secs":0.25,"count":1,"children":[]}]}"#
        );
    }
}
