//! Cross-module tests of the observability layer: histogram boundary
//! behaviour, nested-span accounting, concurrent counter updates, and
//! golden JSON output.

use std::sync::Mutex;

use fdx_obs::{
    counter_add, event, export_jsonl, gauge_set, take_trace, Field, Histogram, Registry, Span,
    HISTOGRAM_BUCKETS,
};

/// The enabled flag is process-global while tests run on parallel threads;
/// serialize every test that flips it.
static ENABLED_LOCK: Mutex<()> = Mutex::new(());

fn with_recording<R>(f: impl FnOnce() -> R) -> R {
    let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fdx_obs::set_enabled(true);
    let out = f();
    fdx_obs::set_enabled(false);
    out
}

#[test]
fn histogram_bucket_boundaries() {
    let h = Histogram::default();
    h.record(0);
    h.record(1);
    h.record(u64::MAX);
    let buckets = h.bucket_counts();
    assert_eq!(buckets[0], 1, "zero lands in the zero bucket");
    assert_eq!(buckets[1], 1, "one lands in [1,1]");
    assert_eq!(buckets[64], 1, "u64::MAX lands in the final bucket");
    assert_eq!(h.count(), 3);
    // The saturating sum pegs at the ceiling rather than wrapping.
    assert_eq!(h.sum(), u64::MAX);
    // Power-of-two edges: 2^k goes one bucket above 2^k - 1.
    for k in 1..63u32 {
        let below = Histogram::bucket_index((1u64 << k) - 1);
        let at = Histogram::bucket_index(1u64 << k);
        assert_eq!(at, below + 1, "k = {k}");
    }
    assert_eq!(HISTOGRAM_BUCKETS, 65);
}

#[test]
fn nested_span_parent_child_accounting() {
    let trace = with_recording(|| {
        let _ = take_trace();
        {
            let _root = Span::enter("root");
            for _ in 0..3 {
                let _child = Span::enter("child");
                let _grandchild = Span::enter("grandchild");
            }
        }
        take_trace()
    });
    assert_eq!(trace.len(), 1);
    let root = &trace[0];
    assert_eq!((root.name.as_str(), root.count), ("root", 1));
    assert_eq!(root.children.len(), 1);
    let child = &root.children[0];
    assert_eq!((child.name.as_str(), child.count), ("child", 3));
    assert_eq!(child.children.len(), 1);
    let grandchild = &child.children[0];
    assert_eq!(
        (grandchild.name.as_str(), grandchild.count),
        ("grandchild", 3)
    );
    // Parent time bounds child time at every level.
    assert!(root.secs >= child.secs);
    assert!(child.secs >= grandchild.secs);
    assert!(child.self_secs() >= 0.0);
}

#[test]
fn concurrent_counter_increments() {
    with_recording(|| {
        let registry = Registry::global();
        registry.reset();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let handle = registry.counter("concurrent.test");
                    for _ in 0..per_thread {
                        handle.add(1);
                    }
                });
            }
        });
        assert_eq!(
            registry.counter("concurrent.test").get(),
            threads * per_thread
        );
        registry.reset();
    });
}

#[test]
fn concurrent_histogram_records() {
    let h = Histogram::default();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let h = &h;
            scope.spawn(move || {
                for i in 0..1_000u64 {
                    h.record(t * 1_000 + i);
                }
            });
        }
    });
    assert_eq!(h.count(), 4_000);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), 4_000);
}

#[test]
fn jsonl_golden_output() {
    let jsonl = with_recording(|| {
        let registry = Registry::global();
        registry.reset();
        counter_add("tane.candidates", 12);
        counter_add("tane.validated", 5);
        gauge_set("glasso.duality_gap", 0.001953125); // exactly representable
        event(
            "fdx.glasso.sweep",
            &[
                ("iter", Field::U(1)),
                ("objective", Field::F(3.5)),
                ("duality_gap", Field::F(0.25)),
                ("active_set", Field::U(6)),
            ],
        );
        let out = export_jsonl(&registry.snapshot());
        registry.reset();
        out
    });
    let expected = concat!(
        r#"{"kind":"counter","name":"tane.candidates","value":12}"#,
        "\n",
        r#"{"kind":"counter","name":"tane.validated","value":5}"#,
        "\n",
        r#"{"kind":"gauge","name":"glasso.duality_gap","value":0.001953125}"#,
        "\n",
        r#"{"kind":"event","name":"fdx.glasso.sweep","iter":1,"objective":3.5,"duality_gap":0.25,"active_set":6}"#,
        "\n",
    );
    assert_eq!(jsonl, expected);
}

#[test]
fn disabled_recording_is_a_no_op() {
    let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fdx_obs::set_enabled(false);
    let registry = Registry::global();
    registry.reset();
    counter_add("ghost", 1);
    gauge_set("ghost.gauge", 1.0);
    event("ghost.event", &[]);
    let snap = registry.snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.events.is_empty());
}

#[test]
fn span_elapsed_works_without_recording() {
    let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fdx_obs::set_enabled(false);
    let span = Span::enter("budget.clock");
    std::thread::sleep(std::time::Duration::from_millis(2));
    assert!(span.elapsed_secs() >= 0.002);
}
