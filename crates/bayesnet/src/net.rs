use fdx_data::{Column, Dataset, Fd, FdSet, Schema, Value};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Conditional probability table of a node.
#[derive(Debug, Clone, PartialEq)]
pub enum Cpt {
    /// Root node: a marginal distribution over the node's states.
    Root(Vec<f64>),
    /// Stochastic node: one distribution per parent configuration (mixed-
    /// radix order, first parent fastest).
    Table(Vec<Vec<f64>>),
    /// Deterministic node: a function from parent configuration to state —
    /// the source of ground-truth FDs.
    Deterministic(Vec<usize>),
}

/// A node of a discrete Bayesian network.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Attribute name in the sampled dataset.
    pub name: String,
    /// Number of states.
    pub card: usize,
    /// Parent node indices (must precede this node).
    pub parents: Vec<usize>,
    /// The node's CPT.
    pub cpt: Cpt,
}

/// A discrete Bayesian network in topological node order.
#[derive(Debug, Clone)]
pub struct BayesNet {
    nodes: Vec<Node>,
    /// Violation probability of deterministic CPTs during sampling: with
    /// probability `fd_epsilon` a deterministic node emits a uniformly
    /// random state instead of `φ(parents)`. This mirrors Equation 1's
    /// ε-approximate FDs and the "inherent randomness" of the bnlearn
    /// default CPTs the paper samples (its Table 4 data has no *extra*
    /// injected noise, but the dependencies are not exact either).
    fd_epsilon: f64,
}

impl BayesNet {
    /// Builds a network, validating topological order, CPT shapes, and
    /// probability normalization.
    ///
    /// # Panics
    ///
    /// Panics on a malformed network — these are constructed in code, so a
    /// shape error is a programming bug, not an input error.
    pub fn new(nodes: Vec<Node>) -> BayesNet {
        for (i, node) in nodes.iter().enumerate() {
            assert!(node.card >= 2, "node {} needs >= 2 states", node.name);
            let mut configs = 1usize;
            for &p in &node.parents {
                assert!(p < i, "node {} has non-topological parent {p}", node.name);
                configs *= nodes[p].card;
            }
            match &node.cpt {
                Cpt::Root(dist) => {
                    assert!(
                        node.parents.is_empty(),
                        "root node {} has parents",
                        node.name
                    );
                    assert_eq!(dist.len(), node.card);
                    assert_distribution(dist, &node.name);
                }
                Cpt::Table(rows) => {
                    assert!(
                        !node.parents.is_empty(),
                        "table node {} has no parents",
                        node.name
                    );
                    assert_eq!(rows.len(), configs, "node {} CPT row count", node.name);
                    for row in rows {
                        assert_eq!(row.len(), node.card);
                        assert_distribution(row, &node.name);
                    }
                }
                Cpt::Deterministic(map) => {
                    assert!(
                        !node.parents.is_empty(),
                        "deterministic node {} has no parents",
                        node.name
                    );
                    assert_eq!(map.len(), configs, "node {} mapping size", node.name);
                    assert!(map.iter().all(|&s| s < node.card));
                }
            }
        }
        BayesNet {
            nodes,
            fd_epsilon: 0.0,
        }
    }

    /// Sets the ε-violation rate of deterministic nodes (see `fd_epsilon`).
    pub fn with_fd_epsilon(mut self, epsilon: f64) -> BayesNet {
        assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0, 1)");
        self.fd_epsilon = epsilon;
        self
    }

    /// The ε-violation rate of deterministic nodes.
    pub fn fd_epsilon(&self) -> f64 {
        self.fd_epsilon
    }

    /// The nodes, in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes (= attributes in sampled data).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The schema of sampled datasets.
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.nodes
                .iter()
                .map(|n| fdx_data::Attribute::categorical(n.name.clone()))
                .collect(),
        )
    }

    /// The ground-truth FDs: `parents → node` for every deterministic node.
    pub fn true_fds(&self) -> FdSet {
        FdSet::from_fds(self.nodes.iter().enumerate().filter_map(|(i, n)| {
            matches!(n.cpt, Cpt::Deterministic(_)).then(|| Fd::new(n.parents.iter().copied(), i))
        }))
    }

    /// Total number of FD edges (the paper's Table 1 "# Edges in FDs").
    pub fn fd_edge_count(&self) -> usize {
        self.true_fds().edge_count()
    }

    /// Draws `n` tuples by ancestral sampling.
    pub fn sample(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = self.nodes.len();
        let mut states = vec![0usize; k];
        let mut codes: Vec<Vec<u32>> = vec![Vec::with_capacity(n); k];
        for _ in 0..n {
            for (i, node) in self.nodes.iter().enumerate() {
                let config = self.parent_config(node, &states);
                let state = match &node.cpt {
                    Cpt::Root(dist) => sample_categorical(dist, &mut rng),
                    Cpt::Table(rows) => sample_categorical(&rows[config], &mut rng),
                    Cpt::Deterministic(map) => {
                        if self.fd_epsilon > 0.0 && rng.gen::<f64>() < self.fd_epsilon {
                            rng.gen_range(0..node.card)
                        } else {
                            map[config]
                        }
                    }
                };
                states[i] = state;
                codes[i].push(state as u32);
            }
        }
        let columns: Vec<Column> = self
            .nodes
            .iter()
            .zip(codes)
            .map(|(node, col_codes)| {
                let dict: Vec<Value> = (0..node.card)
                    .map(|s| Value::text(format!("{}_{s}", node.name)))
                    .collect();
                Column::from_codes(col_codes, dict)
            })
            .collect();
        Dataset::new(self.schema(), columns)
    }

    /// Mixed-radix parent configuration index (first parent fastest).
    fn parent_config(&self, node: &Node, states: &[usize]) -> usize {
        let mut config = 0usize;
        let mut stride = 1usize;
        for &p in &node.parents {
            config += states[p] * stride;
            stride *= self.nodes[p].card;
        }
        config
    }
}

fn assert_distribution(dist: &[f64], name: &str) {
    let sum: f64 = dist.iter().sum();
    assert!(
        (sum - 1.0).abs() < 1e-9 && dist.iter().all(|&p| p >= 0.0),
        "node {name} has an invalid distribution (sum {sum})"
    );
}

fn sample_categorical(dist: &[f64], rng: &mut impl Rng) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    dist.len() - 1
}

/// Builders for randomized CPTs used by the benchmark networks.
pub(crate) mod build {
    use super::*;

    /// A random marginal bounded away from determinism.
    pub fn random_root(card: usize, rng: &mut impl Rng) -> Cpt {
        Cpt::Root(random_distribution(card, rng))
    }

    /// A random CPT with one stochastic row per parent configuration.
    pub fn random_table(card: usize, configs: usize, rng: &mut impl Rng) -> Cpt {
        Cpt::Table(
            (0..configs)
                .map(|_| random_distribution(card, rng))
                .collect(),
        )
    }

    /// A uniformly random deterministic mapping that is guaranteed to be
    /// non-constant (a constant column would make the FD undetectable and
    /// trivially violable).
    pub fn random_deterministic(card: usize, configs: usize, rng: &mut impl Rng) -> Cpt {
        loop {
            let map: Vec<usize> = (0..configs).map(|_| rng.gen_range(0..card)).collect();
            if configs == 1 || map.iter().any(|&s| s != map[0]) {
                return Cpt::Deterministic(map);
            }
        }
    }

    fn random_distribution(card: usize, rng: &mut impl Rng) -> Vec<f64> {
        // Dirichlet-ish: exponential weights, normalized, floored to keep
        // every state reachable.
        let mut w: Vec<f64> = (0..card)
            .map(|_| -f64::ln(rng.gen_range(1e-6..1.0)))
            .collect();
        let sum: f64 = w.iter().sum();
        for v in &mut w {
            *v = (*v / sum).max(0.02);
        }
        let sum: f64 = w.iter().sum();
        for v in &mut w {
            *v /= sum;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> BayesNet {
        // A → B (deterministic), A → C (stochastic).
        BayesNet::new(vec![
            Node {
                name: "A".into(),
                card: 3,
                parents: vec![],
                cpt: Cpt::Root(vec![0.5, 0.3, 0.2]),
            },
            Node {
                name: "B".into(),
                card: 2,
                parents: vec![0],
                cpt: Cpt::Deterministic(vec![0, 1, 1]),
            },
            Node {
                name: "C".into(),
                card: 2,
                parents: vec![0],
                cpt: Cpt::Table(vec![vec![0.9, 0.1], vec![0.5, 0.5], vec![0.2, 0.8]]),
            },
        ])
    }

    #[test]
    fn true_fds_list_deterministic_nodes() {
        let net = tiny_net();
        let fds = net.true_fds();
        assert_eq!(fds.len(), 1);
        assert_eq!(fds.fds()[0], Fd::new([0], 1));
        assert_eq!(net.fd_edge_count(), 1);
    }

    #[test]
    fn sampling_respects_determinism() {
        let net = tiny_net();
        let ds = net.sample(500, 42);
        assert_eq!(ds.nrows(), 500);
        assert_eq!(ds.ncols(), 3);
        // B must equal the deterministic map of A everywhere.
        for r in 0..500 {
            let a = ds.code(r, 0) as usize;
            let b = ds.code(r, 1) as usize;
            let expected = [0usize, 1, 1][a];
            assert_eq!(b, expected, "row {r}");
        }
    }

    #[test]
    fn sampling_matches_root_marginal() {
        let net = tiny_net();
        let ds = net.sample(20_000, 7);
        let freq = ds.column(0).frequencies();
        let p0 = freq[0] as f64 / 20_000.0;
        assert!((p0 - 0.5).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn deterministic_codes_stable_across_seeds() {
        let net = tiny_net();
        let a = net.sample(100, 1);
        let b = net.sample(100, 1);
        assert_eq!(a, b);
        let c = net.sample(100, 2);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "non-topological")]
    fn rejects_forward_parent() {
        BayesNet::new(vec![
            Node {
                name: "A".into(),
                card: 2,
                parents: vec![1],
                cpt: Cpt::Deterministic(vec![0, 0]),
            },
            Node {
                name: "B".into(),
                card: 2,
                parents: vec![],
                cpt: Cpt::Root(vec![0.5, 0.5]),
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "invalid distribution")]
    fn rejects_unnormalized_cpt() {
        BayesNet::new(vec![Node {
            name: "A".into(),
            card: 2,
            parents: vec![],
            cpt: Cpt::Root(vec![0.7, 0.7]),
        }]);
    }

    #[test]
    fn random_builders_produce_valid_cpts() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..20 {
            match build::random_table(3, 4, &mut rng) {
                Cpt::Table(rows) => {
                    assert_eq!(rows.len(), 4);
                    for row in rows {
                        let s: f64 = row.iter().sum();
                        assert!((s - 1.0).abs() < 1e-9);
                    }
                }
                _ => unreachable!(),
            }
            match build::random_deterministic(3, 5, &mut rng) {
                Cpt::Deterministic(map) => {
                    assert_eq!(map.len(), 5);
                    assert!(map.iter().any(|&s| s != map[0]), "must be non-constant");
                }
                _ => unreachable!(),
            }
        }
    }
}
