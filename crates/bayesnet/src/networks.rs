//! The five benchmark networks of the paper's Table 1.
//!
//! DAG structures follow the published `bnlearn` networks (Earthquake's
//! call nodes get augmented parent sets — see below). CPTs are synthesized
//! per seed: designated nodes are *deterministic* functions of their
//! parents, and the designation is chosen so that the number of ground-truth
//! FDs and FD edges matches Table 1 exactly:
//!
//! | network    | attributes | FDs | FD edges |
//! |------------|-----------:|----:|---------:|
//! | Alarm      | 37         | 24  | 45       |
//! | Asia       | 8          | 6   | 8        |
//! | Cancer     | 5          | 3   | 4        |
//! | Child      | 20         | 15  | 20       |
//! | Earthquake | 5          | 3   | 8        |
//!
//! Deterministic nodes are always strictly many-to-one (child cardinality
//! below the parent-configuration count), so no FD degenerates into a
//! bijection that would duplicate a column.

use std::collections::HashMap;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::net::{build, BayesNet, Node};

/// Incremental builder used by the network constructors.
struct NetBuilder {
    nodes: Vec<Node>,
    index: HashMap<&'static str, usize>,
    rng: ChaCha8Rng,
}

impl NetBuilder {
    fn new(seed: u64) -> NetBuilder {
        NetBuilder {
            nodes: Vec::new(),
            index: HashMap::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    fn ids(&self, parents: &[&'static str]) -> Vec<usize> {
        parents
            .iter()
            .map(|p| {
                *self
                    .index
                    .get(p)
                    // fdx-allow: L004 hard-coded reference networks; a bad parent name is a typo in this file
                    .unwrap_or_else(|| panic!("unknown parent {p}"))
            })
            .collect()
    }

    fn configs(&self, parents: &[usize]) -> usize {
        parents.iter().map(|&p| self.nodes[p].card).product()
    }

    fn push(&mut self, name: &'static str, node: Node) {
        assert!(
            self.index.insert(name, self.nodes.len()).is_none(),
            "duplicate node {name}"
        );
        self.nodes.push(node);
    }

    fn root(&mut self, name: &'static str, card: usize) {
        let cpt = build::random_root(card, &mut self.rng);
        self.push(
            name,
            Node {
                name: name.to_string(),
                card,
                parents: vec![],
                cpt,
            },
        );
    }

    fn stoch(&mut self, name: &'static str, card: usize, parents: &[&'static str]) {
        let parents = self.ids(parents);
        let configs = self.configs(&parents);
        let cpt = build::random_table(card, configs, &mut self.rng);
        self.push(
            name,
            Node {
                name: name.to_string(),
                card,
                parents,
                cpt,
            },
        );
    }

    fn det(&mut self, name: &'static str, card: usize, parents: &[&'static str]) {
        let parents = self.ids(parents);
        let configs = self.configs(&parents);
        assert!(
            configs > card,
            "deterministic node {name} must be strictly many-to-one ({configs} configs -> {card} states)"
        );
        let cpt = build::random_deterministic(card, configs, &mut self.rng);
        self.push(
            name,
            Node {
                name: name.to_string(),
                card,
                parents,
                cpt,
            },
        );
    }

    fn build(self) -> BayesNet {
        BayesNet::new(self.nodes)
    }
}

/// The Asia (lung-cancer) network: 8 attributes, 6 FDs, 8 FD edges.
pub fn asia(seed: u64) -> BayesNet {
    let mut b = NetBuilder::new(seed ^ 0xA51A);
    b.root("asia", 4);
    b.root("smoke", 4);
    b.det("tub", 2, &["asia"]);
    b.det("lung", 2, &["smoke"]);
    b.det("bronc", 3, &["smoke"]);
    b.det("either", 3, &["tub", "lung"]);
    b.det("xray", 2, &["either"]);
    b.det("dysp", 2, &["either", "bronc"]);
    b.build()
}

/// The Cancer network: 5 attributes, 3 FDs, 4 FD edges.
pub fn cancer(seed: u64) -> BayesNet {
    let mut b = NetBuilder::new(seed ^ 0xCA2C);
    b.root("pollution", 3);
    b.root("smoker", 3);
    b.det("cancer", 3, &["pollution", "smoker"]);
    b.det("xray", 2, &["cancer"]);
    b.det("dyspnoea", 2, &["cancer"]);
    b.build()
}

/// The Earthquake network: 5 attributes, 3 FDs, 8 FD edges.
///
/// The published DAG gives the call nodes a single parent (`alarm`); Table 1
/// reports 8 FD edges for 3 FDs, so the call nodes here additionally depend
/// on `burglary` and `earthquake` directly (DESIGN.md substitution #1).
pub fn earthquake(seed: u64) -> BayesNet {
    let mut b = NetBuilder::new(seed ^ 0xEA27);
    b.root("burglary", 3);
    b.root("earthquake", 3);
    b.det("alarm", 4, &["burglary", "earthquake"]);
    b.det("johncalls", 3, &["alarm", "burglary", "earthquake"]);
    b.det("marycalls", 3, &["alarm", "burglary", "earthquake"]);
    b.build()
}

/// The Child (congenital heart disease) network: 20 attributes, 15 FDs,
/// 20 FD edges.
pub fn child(seed: u64) -> BayesNet {
    let mut b = NetBuilder::new(seed ^ 0xC41D);
    b.root("BirthAsphyxia", 3);
    b.stoch("Disease", 6, &["BirthAsphyxia"]);
    b.det("LVH", 3, &["Disease"]);
    b.det("DuctFlow", 3, &["Disease"]);
    b.det("CardiacMixing", 4, &["Disease"]);
    b.det("LungParench", 3, &["Disease"]);
    b.det("LungFlow", 3, &["Disease"]);
    b.stoch("Sick", 2, &["Disease"]);
    b.stoch("Age", 3, &["Disease", "Sick"]);
    b.det("LVHreport", 2, &["LVH"]);
    b.det("HypDistrib", 2, &["DuctFlow", "CardiacMixing"]);
    b.det("HypoxiaInO2", 3, &["CardiacMixing", "LungParench"]);
    b.det("CO2", 2, &["LungParench"]);
    b.det("ChestXray", 3, &["LungParench", "LungFlow"]);
    b.det("Grunting", 3, &["LungParench", "Sick"]);
    b.det("LowerBodyO2", 3, &["HypDistrib", "HypoxiaInO2"]);
    b.det("RUQO2", 2, &["HypoxiaInO2"]);
    b.stoch("CO2Report", 2, &["CO2"]);
    b.det("XrayReport", 2, &["ChestXray"]);
    b.det("GruntingReport", 2, &["Grunting"]);
    b.build()
}

/// The Alarm (patient-monitoring) network: 37 attributes, 24 FDs, 45 FD
/// edges. `HISTORY` is the one stochastic non-root; every other non-root is
/// deterministic in its parents.
pub fn alarm(seed: u64) -> BayesNet {
    let mut b = NetBuilder::new(seed ^ 0xA7A2);
    // Roots.
    b.root("HYPOVOLEMIA", 3);
    b.root("LVFAILURE", 3);
    b.root("ERRLOWOUTPUT", 3);
    b.root("ERRCAUTER", 3);
    b.root("INSUFFANESTH", 3);
    b.root("ANAPHYLAXIS", 3);
    b.root("KINKEDTUBE", 3);
    b.root("FIO2", 3);
    b.root("PULMEMBOLUS", 3);
    b.root("INTUBATION", 3);
    b.root("DISCONNECT", 3);
    b.root("MINVOLSET", 3);
    // Cardiovascular chain.
    b.stoch("HISTORY", 2, &["LVFAILURE"]);
    b.det("LVEDVOLUME", 3, &["HYPOVOLEMIA", "LVFAILURE"]);
    b.det("CVP", 2, &["LVEDVOLUME"]);
    b.det("PCWP", 2, &["LVEDVOLUME"]);
    b.det("STROKEVOLUME", 3, &["HYPOVOLEMIA", "LVFAILURE"]);
    // Ventilation chain.
    b.det("VENTMACH", 2, &["MINVOLSET"]);
    b.det("VENTTUBE", 3, &["DISCONNECT", "VENTMACH"]);
    b.det("PRESS", 3, &["KINKEDTUBE", "INTUBATION", "VENTTUBE"]);
    b.det("VENTLUNG", 3, &["KINKEDTUBE", "INTUBATION", "VENTTUBE"]);
    b.det("VENTALV", 3, &["INTUBATION", "VENTLUNG"]);
    b.det("ARTCO2", 2, &["VENTALV"]);
    b.det("EXPCO2", 3, &["ARTCO2", "VENTLUNG"]);
    b.det("MINVOL", 3, &["INTUBATION", "VENTLUNG"]);
    // Oxygenation chain.
    b.det("PVSAT", 3, &["FIO2", "VENTALV"]);
    b.det("SHUNT", 2, &["PULMEMBOLUS", "INTUBATION"]);
    b.det("SAO2", 3, &["PVSAT", "SHUNT"]);
    b.det("PAP", 2, &["PULMEMBOLUS"]);
    b.det("TPR", 2, &["ANAPHYLAXIS"]);
    // Catecholamine / heart-rate chain.
    b.det("CATECHOL", 3, &["ARTCO2", "INSUFFANESTH", "SAO2", "TPR"]);
    b.det("HR", 2, &["CATECHOL"]);
    b.det("CO", 3, &["HR", "STROKEVOLUME"]);
    b.det("HRBP", 2, &["ERRLOWOUTPUT", "HR"]);
    b.det("HREKG", 2, &["ERRCAUTER", "HR"]);
    b.det("HRSAT", 2, &["ERRCAUTER", "HR"]);
    b.det("BP", 2, &["CO", "TPR"]);
    b.build()
}

/// All five networks with their Table 1 labels, in the table's row order.
pub fn all(seed: u64) -> Vec<(&'static str, BayesNet)> {
    vec![
        ("Alarm", alarm(seed)),
        ("Asia", asia(seed)),
        ("Cancer", cancer(seed)),
        ("Child", child(seed)),
        ("Earthquake", earthquake(seed)),
    ]
}

/// The rows of the paper's Table 1: `(name, attributes, FDs, FD edges)` as
/// produced by this crate's generators.
pub fn table1(seed: u64) -> Vec<(&'static str, usize, usize, usize)> {
    all(seed)
        .into_iter()
        .map(|(name, net)| (name, net.len(), net.true_fds().len(), net.fd_edge_count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_match_paper() {
        let rows = table1(0);
        assert_eq!(
            rows,
            vec![
                ("Alarm", 37, 24, 45),
                ("Asia", 8, 6, 8),
                ("Cancer", 5, 3, 4),
                ("Child", 20, 15, 20),
                ("Earthquake", 5, 3, 8),
            ]
        );
    }

    #[test]
    fn samples_satisfy_every_true_fd() {
        for (name, net) in all(1) {
            let ds = net.sample(300, 9);
            for fd in net.true_fds().iter() {
                // Group rows by lhs codes; every group must have a single
                // rhs value (deterministic CPTs admit zero violations).
                let mut map: std::collections::HashMap<Vec<u32>, u32> =
                    std::collections::HashMap::new();
                for r in 0..ds.nrows() {
                    let key: Vec<u32> = fd.lhs().iter().map(|&a| ds.code(r, a)).collect();
                    let rhs = ds.code(r, fd.rhs());
                    let entry = map.entry(key).or_insert(rhs);
                    assert_eq!(
                        *entry,
                        rhs,
                        "{name}: FD {} violated at row {r}",
                        fd.display(ds.schema())
                    );
                }
            }
        }
    }

    #[test]
    fn different_seeds_give_different_cpts() {
        let a = asia(1).sample(50, 3);
        let b = asia(2).sample(50, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn schema_names_are_published_names() {
        let net = alarm(0);
        let schema = net.schema();
        assert!(schema.id_of("CATECHOL").is_some());
        assert!(schema.id_of("VENTLUNG").is_some());
        assert_eq!(schema.len(), 37);
        let child = child(0);
        assert!(child.schema().id_of("HypoxiaInO2").is_some());
    }

    #[test]
    fn no_deterministic_bijections() {
        // Strict many-to-one everywhere: every deterministic node has more
        // parent configurations than states (so columns never duplicate
        // structurally).
        for (name, net) in all(0) {
            for node in net.nodes() {
                if let crate::Cpt::Deterministic(map) = &node.cpt {
                    assert!(
                        map.len() > node.card,
                        "{name}/{} is not strictly many-to-one",
                        node.name
                    );
                }
            }
        }
    }

    #[test]
    fn sampled_attribute_counts() {
        for (name, net) in all(4) {
            let ds = net.sample(10, 1);
            assert_eq!(ds.ncols(), net.len(), "{name}");
            assert_eq!(ds.nrows(), 10);
        }
    }
}
