//! Discrete Bayesian-network substrate for the FDX reproduction.
//!
//! The paper's known-structure experiments (Tables 1, 4, 5, 8, 9) sample
//! data from five benchmark networks of the `bnlearn` repository — Alarm,
//! Asia, Cancer, Child, Earthquake — whose generating distributions contain
//! deterministic (FD-like) dependencies. This crate implements:
//!
//! * [`BayesNet`] — a discrete BN with tabular and *deterministic* CPTs and
//!   ancestral (topological) sampling into a [`fdx_data::Dataset`],
//! * [`networks`] — the five benchmark networks. The DAG structures follow
//!   the published networks; the CPTs are synthesized (see `DESIGN.md`,
//!   substitution #1) such that the designated deterministic nodes
//!   reproduce the FD and FD-edge counts of the paper's Table 1 exactly.
//!
//! Ground-truth FDs are exposed via [`BayesNet::true_fds`]: every
//! deterministic node `Y` with parents `X` contributes `X → Y`.

mod net;
pub mod networks;

pub use net::{BayesNet, Cpt, Node};
