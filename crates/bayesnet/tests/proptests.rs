//! Property-based tests for the Bayesian-network substrate.

use fdx_bayesnet::{networks, BayesNet, Cpt, Node};
use proptest::prelude::*;

/// Strategy: a random two-layer network `roots → deterministic children`.
fn random_net() -> impl Strategy<Value = BayesNet> {
    (
        proptest::collection::vec(0.05..1.0f64, 2..5), // root weights (len = card)
        2usize..4,                                     // child cardinality
    )
        .prop_map(|(weights, child_card)| {
            let root_card = weights.len();
            let sum: f64 = weights.iter().sum();
            let dist: Vec<f64> = weights.iter().map(|w| w / sum).collect();
            let configs = root_card;
            // Deterministic non-constant mapping (builders guarantee this;
            // emulate it here).
            let map: Vec<usize> = (0..configs).map(|c| c % child_card.max(2)).collect();
            BayesNet::new(vec![
                Node {
                    name: "root".into(),
                    card: root_card,
                    parents: vec![],
                    cpt: Cpt::Root(dist),
                },
                Node {
                    name: "child".into(),
                    card: child_card.max(2),
                    parents: vec![0],
                    cpt: Cpt::Deterministic(map),
                },
            ])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sampling_respects_deterministic_cpts(net in random_net(), seed in 0u64..100) {
        let ds = net.sample(120, seed);
        let map = match &net.nodes()[1].cpt {
            Cpt::Deterministic(m) => m.clone(),
            _ => unreachable!(),
        };
        for r in 0..120 {
            let root = ds.code(r, 0) as usize;
            let child = ds.code(r, 1) as usize;
            prop_assert_eq!(child, map[root]);
        }
    }

    #[test]
    fn epsilon_bounds_violation_rate(net in random_net(), seed in 0u64..20) {
        let eps = 0.2;
        let noisy = net.clone().with_fd_epsilon(eps);
        let ds = noisy.sample(3_000, seed);
        let map = match &net.nodes()[1].cpt {
            Cpt::Deterministic(m) => m.clone(),
            _ => unreachable!(),
        };
        let violations = (0..3_000)
            .filter(|&r| ds.code(r, 1) as usize != map[ds.code(r, 0) as usize])
            .count();
        let rate = violations as f64 / 3_000.0;
        // ε-flips land on the correct value ~1/card of the time, so the
        // observed violation rate is ε·(1 − 1/card) ± sampling noise.
        prop_assert!(rate < eps + 0.05, "violation rate {rate}");
        prop_assert!(rate > 0.02, "violation rate {rate} suspiciously low");
    }

    #[test]
    fn samples_are_deterministic_per_seed(net in random_net(), seed in 0u64..50) {
        prop_assert_eq!(net.sample(50, seed), net.sample(50, seed));
    }
}

#[test]
fn benchmark_networks_have_acyclic_reachable_structure() {
    for (name, net) in networks::all(3) {
        // Topological parent order is validated at construction; check the
        // sampled data is fully populated and every node has valid codes.
        let ds = net.sample(64, 9);
        for a in 0..ds.ncols() {
            let card = net.nodes()[a].card;
            for r in 0..64 {
                assert!((ds.code(r, a) as usize) < card, "{name} node {a}");
            }
        }
    }
}
