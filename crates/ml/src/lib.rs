//! Missing-data imputation substrate for the Table 7 experiment.
//!
//! The paper uses AimNet (attention-based imputation) and XGBoost to show
//! that attributes FDX places in an FD are imputed far more accurately than
//! attributes it calls independent. Neither model family is essential to
//! that claim — it is a property of the data's dependency structure — so
//! this crate provides two from-scratch conditional models filling the same
//! roles (DESIGN.md, substitution #6):
//!
//! * [`GbdtImputer`] — gradient-boosted one-vs-rest decision stumps over
//!   categorical equality tests (the XGBoost role),
//! * [`KnnImputer`] — distance-weighted k-nearest-neighbour voting over
//!   tuple overlap (the attention role: predictions weight other tuples by
//!   contextual similarity).
//!
//! Both implement [`Imputer`]: train on the rows where the target is
//! observed, predict dictionary codes for held-out rows.

mod gbdt;
mod knn;

pub use gbdt::{GbdtConfig, GbdtImputer};
pub use knn::{KnnConfig, KnnImputer};

use fdx_data::{AttrId, Dataset};

/// A conditional model that fills in missing cells of one attribute.
pub trait Imputer {
    /// Human-readable model name (used in Table 7's header).
    fn name(&self) -> &'static str;

    /// Predicts dictionary codes of `target` for each row in `test_rows`,
    /// training on all other rows where `target` is observed.
    fn impute(&self, ds: &Dataset, target: AttrId, test_rows: &[usize]) -> Vec<u32>;
}

/// Micro-averaged imputation accuracy (exact-match rate), the scalar Table 7
/// reports per attribute.
pub fn imputation_accuracy(truth: &[u32], predicted: &[u32]) -> f64 {
    assert_eq!(truth.len(), predicted.len());
    if truth.is_empty() {
        return 0.0;
    }
    let hits = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    hits as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(imputation_accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(imputation_accuracy(&[], &[]), 0.0);
    }
}
