use fdx_data::{AttrId, Dataset, NULL_CODE};

use crate::Imputer;

/// Configuration for [`KnnImputer`].
#[derive(Debug, Clone, Copy)]
pub struct KnnConfig {
    /// Neighbours consulted per prediction.
    pub k: usize,
    /// Training rows scanned per prediction (subsampled for large inputs).
    pub max_train_rows: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig {
            k: 7,
            max_train_rows: 4_000,
        }
    }
}

/// Distance-weighted k-nearest-neighbour imputation over tuple overlap:
/// the distance between two tuples is the number of non-target attributes
/// on which they disagree (nulls always disagree), and neighbours vote with
/// weight `1/(1+d)` — a hard-attention analogue of the paper's AimNet.
#[derive(Debug, Clone, Default)]
pub struct KnnImputer {
    config: KnnConfig,
}

impl KnnImputer {
    /// Creates a kNN imputer.
    pub fn new(config: KnnConfig) -> KnnImputer {
        KnnImputer { config }
    }
}

impl Imputer for KnnImputer {
    fn name(&self) -> &'static str {
        "knn-attention"
    }

    fn impute(&self, ds: &Dataset, target: AttrId, test_rows: &[usize]) -> Vec<u32> {
        let k_attrs = ds.ncols();
        let in_test: std::collections::HashSet<usize> = test_rows.iter().copied().collect();
        // Training rows: observed target, not held out.
        let train: Vec<usize> = (0..ds.nrows())
            .filter(|r| !in_test.contains(r) && ds.code(*r, target) != NULL_CODE)
            .take(self.config.max_train_rows)
            .collect();
        let card = ds.column(target).distinct_count();
        let fallback = mode_code(ds, target, &train);

        test_rows
            .iter()
            .map(|&row| {
                if train.is_empty() || card == 0 {
                    return fallback;
                }
                // Distances to all training rows.
                let mut scored: Vec<(usize, usize)> = train
                    .iter()
                    .map(|&t| {
                        let mut d = 0usize;
                        for a in 0..k_attrs {
                            if a == target {
                                continue;
                            }
                            let ca = ds.code(row, a);
                            let cb = ds.code(t, a);
                            if ca == NULL_CODE || cb == NULL_CODE || ca != cb {
                                d += 1;
                            }
                        }
                        (d, t)
                    })
                    .collect();
                let k = self.config.k.min(scored.len());
                scored.select_nth_unstable(k.saturating_sub(1));
                scored.truncate(k);
                // Weighted vote.
                let mut votes = vec![0.0f64; card];
                for &(d, t) in &scored {
                    let code = ds.code(t, target);
                    if code != NULL_CODE {
                        votes[code as usize] += 1.0 / (1.0 + d as f64);
                    }
                }
                votes
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c as u32)
                    .unwrap_or(fallback)
            })
            .collect()
    }
}

/// Most frequent observed code among `rows` (prediction of last resort).
fn mode_code(ds: &Dataset, attr: AttrId, rows: &[usize]) -> u32 {
    let card = ds.column(attr).distinct_count();
    if card == 0 {
        return 0;
    }
    let mut freq = vec![0usize; card];
    for &r in rows {
        let c = ds.code(r, attr);
        if c != NULL_CODE {
            freq[c as usize] += 1;
        }
    }
    freq.iter()
        .enumerate()
        .max_by_key(|&(_, f)| *f)
        .map(|(c, _)| c as u32)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imputation_accuracy;

    fn fd_ds() -> Dataset {
        // city is a function of zip.
        let mut rows = Vec::new();
        for i in 0..120 {
            let zip = i % 12;
            rows.push([format!("z{zip}"), format!("c{}", zip / 3)]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["zip", "city"], &slices)
    }

    #[test]
    fn imputes_fd_determined_attribute_perfectly() {
        let ds = fd_ds();
        let test_rows: Vec<usize> = (0..120).step_by(10).collect();
        let truth: Vec<u32> = test_rows.iter().map(|&r| ds.code(r, 1)).collect();
        let pred = KnnImputer::default().impute(&ds, 1, &test_rows);
        assert_eq!(imputation_accuracy(&truth, &pred), 1.0);
    }

    #[test]
    fn independent_attribute_imputes_poorly() {
        // Target has 6 uniform values unrelated to the feature.
        let mut rows = Vec::new();
        for i in 0..240 {
            rows.push([format!("f{}", i % 4), format!("t{}", (i * 7 + i / 3) % 6)]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["f", "t"], &slices);
        let test_rows: Vec<usize> = (0..240).step_by(6).collect();
        let truth: Vec<u32> = test_rows.iter().map(|&r| ds.code(r, 1)).collect();
        let pred = KnnImputer::default().impute(&ds, 1, &test_rows);
        let acc = imputation_accuracy(&truth, &pred);
        assert!(acc < 0.6, "expected near-chance accuracy, got {acc}");
    }

    #[test]
    fn handles_all_null_training_gracefully() {
        let mut ds = fd_ds();
        for r in 0..120 {
            ds.column_mut(1).set_value(r, fdx_data::Value::Null);
        }
        let pred = KnnImputer::default().impute(&ds, 1, &[0, 1]);
        assert_eq!(pred.len(), 2);
    }
}
