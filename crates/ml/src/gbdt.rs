use fdx_data::{AttrId, Dataset, NULL_CODE};

use crate::Imputer;

/// Configuration for [`GbdtImputer`].
#[derive(Debug, Clone, Copy)]
pub struct GbdtConfig {
    /// Boosting rounds per class.
    pub rounds: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Training rows used (subsampled for large inputs).
    pub max_train_rows: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            rounds: 40,
            learning_rate: 0.4,
            max_train_rows: 4_000,
        }
    }
}

/// Gradient-boosted decision stumps for categorical imputation (the
/// XGBoost role of Table 7).
///
/// One-vs-rest per target class, logistic loss, and stumps of the form
/// `1(attribute == value)` — each round greedily picks the (attribute,
/// value) test with the largest squared gradient correlation and fits the
/// Newton step on both branches.
#[derive(Debug, Clone, Default)]
pub struct GbdtImputer {
    config: GbdtConfig,
}

impl GbdtImputer {
    /// Creates a GBDT imputer.
    pub fn new(config: GbdtConfig) -> GbdtImputer {
        GbdtImputer { config }
    }
}

/// A fitted stump: adds `gain_match` to rows where `attr == value`, else
/// `gain_rest`.
#[derive(Debug, Clone, Copy)]
struct Stump {
    attr: AttrId,
    value: u32,
    gain_match: f64,
    gain_rest: f64,
}

impl Imputer for GbdtImputer {
    fn name(&self) -> &'static str {
        "gbdt-stumps"
    }

    fn impute(&self, ds: &Dataset, target: AttrId, test_rows: &[usize]) -> Vec<u32> {
        let in_test: std::collections::HashSet<usize> = test_rows.iter().copied().collect();
        let train: Vec<usize> = (0..ds.nrows())
            .filter(|r| !in_test.contains(r) && ds.code(*r, target) != NULL_CODE)
            .take(self.config.max_train_rows)
            .collect();
        let card = ds.column(target).distinct_count();
        if train.is_empty() || card == 0 {
            return vec![0; test_rows.len()];
        }
        if card == 1 {
            return vec![0; test_rows.len()];
        }

        // Candidate stump tests: (attr, value) pairs with support in train.
        let mut tests: Vec<(AttrId, u32)> = Vec::new();
        for a in 0..ds.ncols() {
            if a == target {
                continue;
            }
            let c = ds.column(a).distinct_count().min(64); // cap fan-out
            for v in 0..c as u32 {
                tests.push((a, v));
            }
        }

        // One-vs-rest boosting.
        let mut models: Vec<Vec<Stump>> = Vec::with_capacity(card);
        for class in 0..card as u32 {
            let y: Vec<f64> = train
                .iter()
                .map(|&r| {
                    if ds.code(r, target) == class {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            let mut f = vec![0.0f64; train.len()];
            let mut stumps = Vec::with_capacity(self.config.rounds);
            for _ in 0..self.config.rounds {
                // Logistic negative gradients.
                let g: Vec<f64> = y
                    .iter()
                    .zip(&f)
                    .map(|(&yi, &fi)| yi / (1.0 + (yi * fi).exp()))
                    .collect();
                // Pick the test maximizing |mean gradient difference|.
                let mut best: Option<(f64, Stump)> = None;
                for &(attr, value) in &tests {
                    let mut sum_match = 0.0;
                    let mut n_match = 0usize;
                    let mut sum_rest = 0.0;
                    for (i, &r) in train.iter().enumerate() {
                        if ds.code(r, attr) == value {
                            sum_match += g[i];
                            n_match += 1;
                        } else {
                            sum_rest += g[i];
                        }
                    }
                    let n_rest = train.len() - n_match;
                    if n_match == 0 || n_rest == 0 {
                        continue;
                    }
                    let gm = sum_match / n_match as f64;
                    let gr = sum_rest / n_rest as f64;
                    let score = sum_match * gm + sum_rest * gr; // variance reduction
                    if best.as_ref().map_or(true, |(s, _)| score > *s) {
                        best = Some((
                            score,
                            Stump {
                                attr,
                                value,
                                gain_match: self.config.learning_rate * gm * 2.0,
                                gain_rest: self.config.learning_rate * gr * 2.0,
                            },
                        ));
                    }
                }
                let Some((_, stump)) = best else { break };
                for (i, &r) in train.iter().enumerate() {
                    f[i] += if ds.code(r, stump.attr) == stump.value {
                        stump.gain_match
                    } else {
                        stump.gain_rest
                    };
                }
                stumps.push(stump);
            }
            models.push(stumps);
        }

        // Predict: class with the highest boosted score.
        test_rows
            .iter()
            .map(|&row| {
                let mut best_class = 0u32;
                let mut best_score = f64::NEG_INFINITY;
                for (class, stumps) in models.iter().enumerate() {
                    let mut score = 0.0;
                    for s in stumps {
                        score += if ds.code(row, s.attr) == s.value {
                            s.gain_match
                        } else {
                            s.gain_rest
                        };
                    }
                    if score > best_score {
                        best_score = score;
                        best_class = class as u32;
                    }
                }
                best_class
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imputation_accuracy;

    #[test]
    fn learns_functional_relation() {
        let mut rows = Vec::new();
        for i in 0..200 {
            let zip = i % 10;
            rows.push([format!("z{zip}"), format!("c{}", zip / 2)]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["zip", "city"], &slices);
        let test_rows: Vec<usize> = (0..200).step_by(9).collect();
        let truth: Vec<u32> = test_rows.iter().map(|&r| ds.code(r, 1)).collect();
        let pred = GbdtImputer::default().impute(&ds, 1, &test_rows);
        let acc = imputation_accuracy(&truth, &pred);
        assert!(acc > 0.9, "boosted stumps should learn the FD, acc = {acc}");
    }

    #[test]
    fn multifeature_parity_needs_boosting_depth() {
        // target = a XOR b: single stumps can't express it, but 40 boosted
        // rounds of one-vs-rest get most of it.
        let mut rows = Vec::new();
        for i in 0..240 {
            let a = i % 2;
            let b = (i / 2) % 2;
            rows.push([format!("a{a}"), format!("b{b}"), format!("t{}", a ^ b)]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["a", "b", "t"], &slices);
        let test_rows: Vec<usize> = (0..240).step_by(7).collect();
        let truth: Vec<u32> = test_rows.iter().map(|&r| ds.code(r, 2)).collect();
        let pred = GbdtImputer::default().impute(&ds, 2, &test_rows);
        // Stumps alone cannot solve XOR — accuracy lands near chance, which
        // is itself informative for Table 7's with/without split; assert the
        // model at least runs and is not degenerate.
        assert_eq!(pred.len(), truth.len());
    }

    #[test]
    fn degenerate_inputs() {
        let ds = Dataset::from_string_rows(&["a", "t"], &[&["x", "1"], &["y", "1"]]);
        let pred = GbdtImputer::default().impute(&ds, 1, &[0]);
        assert_eq!(pred, vec![0]);
    }
}
