use std::collections::BTreeSet;

use fdx_data::FdSet;

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of discovered edges that are true edges.
    pub precision: f64,
    /// Fraction of true edges discovered.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
}

impl PrecisionRecall {
    fn from_counts(tp: usize, found: usize, truth: usize) -> PrecisionRecall {
        let precision = if found > 0 {
            tp as f64 / found as f64
        } else {
            0.0
        };
        let recall = if truth > 0 {
            tp as f64 / truth as f64
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        PrecisionRecall {
            precision,
            recall,
            f1,
        }
    }
}

/// The paper's §5.1 metric: precision/recall/F1 over the *edges* of FDs —
/// every FD `X → Y` contributes the directed edges `(x, Y)` for `x ∈ X`.
pub fn edge_prf(truth: &FdSet, found: &FdSet) -> PrecisionRecall {
    let t = truth.edge_set();
    let f = found.edge_set();
    let tp = f.intersection(&t).count();
    PrecisionRecall::from_counts(tp, f.len(), t.len())
}

/// Direction-agnostic variant: edges compared as unordered pairs. Used as a
/// diagnostic to separate structure errors from orientation errors.
pub fn undirected_edge_prf(truth: &FdSet, found: &FdSet) -> PrecisionRecall {
    let undir = |s: &FdSet| -> BTreeSet<(usize, usize)> {
        s.edge_set()
            .into_iter()
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect()
    };
    let t = undir(truth);
    let f = undir(found);
    let tp = f.intersection(&t).count();
    PrecisionRecall::from_counts(tp, f.len(), t.len())
}

/// Median of a sample (the paper reports medians over five instances "to
/// maintain the coupling amongst Precision, Recall, and F1").
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdx_data::Fd;

    #[test]
    fn perfect_discovery() {
        let truth = FdSet::from_fds([Fd::new([0, 1], 2)]);
        let r = edge_prf(&truth, &truth.clone());
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f1, 1.0);
    }

    #[test]
    fn partial_discovery() {
        let truth = FdSet::from_fds([Fd::new([0, 1], 2)]); // edges (0,2),(1,2)
        let found = FdSet::from_fds([Fd::new([0], 2), Fd::new([3], 2)]); // (0,2),(3,2)
        let r = edge_prf(&truth, &found);
        assert_eq!(r.precision, 0.5);
        assert_eq!(r.recall, 0.5);
        assert_eq!(r.f1, 0.5);
    }

    #[test]
    fn empty_found_scores_zero() {
        let truth = FdSet::from_fds([Fd::new([0], 1)]);
        let r = edge_prf(&truth, &FdSet::new());
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f1, 0.0);
    }

    #[test]
    fn undirected_forgives_orientation() {
        let truth = FdSet::from_fds([Fd::new([0], 1)]);
        let reversed = FdSet::from_fds([Fd::new([1], 0)]);
        assert_eq!(edge_prf(&truth, &reversed).f1, 0.0);
        assert_eq!(undirected_edge_prf(&truth, &reversed).f1, 1.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }
}
