//! Evaluation harness for the FDX reproduction.
//!
//! Provides the paper's §5.1 metrics ([`edge_prf`] — edge-level precision,
//! recall, F1), a uniform [`Method`] wrapper over FDX and every baseline
//! (with per-method wall-clock measurement and budget enforcement), and a
//! plain-text table renderer used by the per-table/figure binaries in
//! `fdx-bench`.

mod method;
mod metrics;
mod table;

pub use method::{Method, MethodOutcome};
pub use metrics::{edge_prf, median, undirected_edge_prf, PrecisionRecall};
pub use table::{fmt_metric, TextTable};
