use std::fmt::Write as _;

/// A minimal fixed-width text-table builder for the experiment binaries.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Shorter rows are right-padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert!(cells.len() <= self.header.len(), "row wider than header");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            let trimmed = out.trim_end().len();
            out.truncate(trimmed);
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with three decimals, or "-" for skipped entries.
pub fn fmt_metric(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.3}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    fn short_rows_pad() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(fmt_metric(Some(0.12345)), "0.123");
        assert_eq!(fmt_metric(None), "-");
    }

    #[test]
    #[should_panic(expected = "wider than header")]
    fn wide_rows_rejected() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
