use fdx_baselines::{
    Cords, CordsConfig, GlRaw, GlRawConfig, Pyro, PyroConfig, Rfi, RfiConfig, Tane, TaneConfig,
};
use fdx_core::{Fdx, FdxConfig};
use fdx_data::{Dataset, FdSet};

/// A uniform handle over FDX and every baseline — the "methods" axis of
/// Tables 4–6 and Figure 2.
#[derive(Debug, Clone)]
pub enum Method {
    /// FDX with the given configuration.
    Fdx(Box<FdxConfig>),
    /// Graphical lasso on raw data (the §4.3 ablation).
    Gl(GlRawConfig),
    /// The Pyro-flavoured approximate-FD search.
    Pyro(PyroConfig),
    /// TANE.
    Tane(TaneConfig),
    /// CORDS.
    Cords(CordsConfig),
    /// RFI with an approximation parameter α.
    Rfi(RfiConfig),
}

/// What a method run produced.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Discovered FDs (empty if the method declined to run).
    pub fds: FdSet,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// `true` if the method could not run on this input (e.g. a lattice
    /// method beyond its attribute limit) — rendered as "-" in tables, like
    /// the paper's timeout dashes.
    pub skipped: bool,
}

impl Method {
    /// The method's display name, matching the paper's column headers.
    pub fn name(&self) -> String {
        match self {
            Method::Fdx(_) => "FDX".to_string(),
            Method::Gl(_) => "GL".to_string(),
            Method::Pyro(_) => "PYRO".to_string(),
            Method::Tane(_) => "TANE".to_string(),
            Method::Cords(_) => "CORDS".to_string(),
            Method::Rfi(c) => format!("RFI({})", c.alpha),
        }
    }

    /// The default method lineup of Table 4 (FDX, GL, PYRO, TANE, CORDS,
    /// RFI at α ∈ {0.3, 0.5, 1.0}).
    pub fn lineup() -> Vec<Method> {
        vec![
            Method::Fdx(Box::new(FdxConfig::default())),
            Method::Gl(GlRawConfig::default()),
            Method::Pyro(PyroConfig::default()),
            Method::Tane(TaneConfig::default()),
            Method::Cords(CordsConfig::default()),
            Method::Rfi(RfiConfig {
                alpha: 0.3,
                ..Default::default()
            }),
            Method::Rfi(RfiConfig {
                alpha: 0.5,
                ..Default::default()
            }),
            Method::Rfi(RfiConfig {
                alpha: 1.0,
                ..Default::default()
            }),
        ]
    }

    /// Informs methods with error-rate knobs of the dataset's (known or
    /// expected) noise rate — the paper's per-dataset tuning protocol.
    pub fn tuned_for_noise(self, noise: f64) -> Method {
        match self {
            Method::Fdx(cfg) => Method::Fdx(Box::new((*cfg).for_noise_rate(noise))),
            Method::Pyro(mut cfg) => {
                cfg.max_error = noise.max(0.005);
                Method::Pyro(cfg)
            }
            Method::Tane(mut cfg) => {
                cfg.max_error = noise.max(0.005);
                Method::Tane(cfg)
            }
            other => other,
        }
    }

    /// Runs the method, measuring wall-clock time. Lattice methods skip
    /// inputs beyond their 128-attribute representation; RFI skips very
    /// wide inputs (it would blow its own time budget on the first target,
    /// reproducing the paper's "-" entries).
    pub fn run(&self, ds: &Dataset) -> MethodOutcome {
        let k = ds.ncols();
        let lattice_limit = 128;
        let skip = match self {
            Method::Pyro(_) | Method::Tane(_) => k > lattice_limit,
            Method::Rfi(_) => k > 40,
            _ => false,
        };
        if skip || ds.nrows() < 2 || k < 2 {
            return MethodOutcome {
                fds: FdSet::new(),
                seconds: 0.0,
                skipped: true,
            };
        }
        let span = fdx_obs::Span::enter_named(format!("method.{}", self.name()));
        let fds = match self {
            Method::Fdx(cfg) => Fdx::new((**cfg).clone())
                .discover(ds)
                .map(|r| r.fds)
                .unwrap_or_default(),
            Method::Gl(cfg) => GlRaw::new(cfg.clone()).discover(ds),
            Method::Pyro(cfg) => Pyro::new(cfg.clone()).discover(ds),
            Method::Tane(cfg) => Tane::new(cfg.clone()).discover(ds),
            Method::Cords(cfg) => Cords::new(cfg.clone()).discover(ds),
            Method::Rfi(cfg) => Rfi::new(cfg.clone()).discover(ds),
        };
        MethodOutcome {
            fds,
            seconds: span.elapsed_secs(),
            skipped: false,
        }
    }
}

/// Runs every method in the slice over `ds`, fanning the lineup across
/// worker threads via [`fdx_par`]. Outcomes come back in lineup order
/// regardless of thread count; each method times itself as in [`Method::run`].
///
/// `threads: None` defers to `FDX_THREADS` / available parallelism, exactly
/// like the discovery pipeline.
pub fn run_all(methods: &[Method], ds: &Dataset, threads: Option<usize>) -> Vec<MethodOutcome> {
    let threads = fdx_par::resolve_threads(threads);
    fdx_par::par_map_indexed(methods, threads, |_, m| m.run(ds))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..60 {
            let a = i % 10;
            rows.push([
                format!("a{a}"),
                format!("b{}", a / 2),
                format!("c{}", (i * 11 + 1) % 4),
            ]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["a", "b", "c"], &slices)
    }

    #[test]
    fn lineup_matches_table4_columns() {
        let names: Vec<String> = Method::lineup().iter().map(Method::name).collect();
        assert_eq!(
            names,
            vec!["FDX", "GL", "PYRO", "TANE", "CORDS", "RFI(0.3)", "RFI(0.5)", "RFI(1)"]
        );
    }

    #[test]
    fn every_method_runs_on_small_data() {
        for m in Method::lineup() {
            let out = m.run(&ds());
            assert!(!out.skipped, "{} skipped", m.name());
            assert!(out.seconds >= 0.0);
        }
    }

    #[test]
    fn fdx_and_tane_find_the_fd() {
        let truth_edge = (0usize, 1usize);
        for m in [
            Method::Fdx(Box::new(FdxConfig::default())),
            Method::Tane(TaneConfig::default()),
        ] {
            let out = m.run(&ds());
            assert!(
                out.fds.edge_set().contains(&truth_edge),
                "{} missed a -> b: {:?}",
                m.name(),
                out.fds
            );
        }
    }

    #[test]
    fn degenerate_input_is_skipped() {
        let tiny = Dataset::from_string_rows(&["a"], &[&["1"]]);
        let out = Method::Fdx(Box::new(FdxConfig::default())).run(&tiny);
        assert!(out.skipped);
        assert!(out.fds.is_empty());
    }

    #[test]
    fn run_all_matches_sequential_runs_in_order() {
        let data = ds();
        let methods = vec![
            Method::Fdx(Box::new(FdxConfig::default())),
            Method::Tane(TaneConfig::default()),
            Method::Cords(CordsConfig::default()),
        ];
        let sequential: Vec<MethodOutcome> = methods.iter().map(|m| m.run(&data)).collect();
        for threads in [1usize, 2, 4] {
            let parallel = run_all(&methods, &data, Some(threads));
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.skipped, s.skipped);
                assert_eq!(p.fds.edge_set(), s.fds.edge_set());
            }
        }
    }

    #[test]
    fn noise_tuning_adjusts_error_budgets() {
        let m = Method::Tane(TaneConfig::default()).tuned_for_noise(0.3);
        match m {
            Method::Tane(cfg) => assert!((cfg.max_error - 0.3).abs() < 1e-12),
            _ => unreachable!(),
        }
    }
}
