//! # FDX — functional dependency discovery via structure learning
//!
//! This crate is the core of the reproduction of *"A Statistical Perspective
//! on Discovering Functional Dependencies in Noisy Data"* (Zhang, Guo,
//! Rekatsinas — SIGMOD 2020). FDX casts FD discovery as structure learning
//! of a linear structural equation model over binary random variables
//! `Z[A] = 1(t_i[A] = t_j[A])` defined on random tuple pairs.
//!
//! The pipeline (paper Algorithm 1):
//!
//! 1. **Transform** ([`pair_transform`], Algorithm 2): sort by each
//!    attribute, circular-shift by one, and record per-attribute equality
//!    indicators — a bit-packed `n·k × k` binary sample.
//! 2. **Estimate** the covariance of the sample and its sparse inverse `Θ`
//!    (graphical lasso; `λ = 0` degenerates to a stabilized inversion).
//! 3. **Order** the attributes with a fill-reducing heuristic
//!    (`fdx_order`), then factorize `Θ = U D Uᵀ` with unit
//!    upper-triangular `U` and read off the autoregression matrix
//!    `B = I − U`.
//! 4. **Generate FDs** (Algorithm 3): the above-threshold entries of column
//!    `j` of `B` form the determinant set of an FD on attribute `j`.
//!
//! Every run carries a [`RunHealth`] degradation report: structure learning
//! descends a deterministic recovery ladder (configured glasso → relaxed
//! retry → direct inversion → neighborhood selection) instead of failing
//! outright, phase boundaries enforce finite-ness guards, and an optional
//! wall-clock budget ([`FdxConfig::time_budget`]) turns runaway runs into a
//! typed [`FdxError::BudgetExceeded`].
//!
//! # Example
//!
//! ```
//! use fdx_core::{Fdx, FdxConfig};
//! use fdx_data::Dataset;
//!
//! let rows: Vec<[String; 2]> = (0..60)
//!     .map(|i| {
//!         let zip = i % 12; // 12 zips, 5 rows each
//!         [format!("z{zip}"), format!("city{}", zip / 3)]
//!     })
//!     .collect();
//! let refs: Vec<Vec<&str>> = rows
//!     .iter()
//!     .map(|r| vec![r[0].as_str(), r[1].as_str()])
//!     .collect();
//! let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
//! let ds = Dataset::from_string_rows(&["zip", "city"], &slices);
//! let result = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
//! // zip determines city.
//! assert!(result
//!     .fds
//!     .iter()
//!     .any(|fd| fd.rhs() == 1 && fd.lhs() == [0]));
//! ```

mod config;
mod discover;
mod report;
mod resilience;
mod transform;
mod validate;

pub use config::{FdxConfig, NullPolicy, PairSampling, TransformConfig};
pub use discover::{Fdx, FdxError};
// Re-exported so downstream crates (notably fdx-serve's session layer) can
// thread a warm start between runs without direct fdx-glasso/fdx-linalg
// dependencies.
pub use fdx_glasso::WarmStart;
pub use fdx_linalg::Matrix;
pub use report::{render_autoregression_heatmap, FdxResult, FdxTimings};
pub use resilience::{RecoveryRung, RunHealth};
pub use transform::{pair_transform, pair_transform_matrix, PairStats};
pub use validate::{refine, refine_with_options, score_fd, FdScore, RefineOptions};
