use fdx_data::{FdSet, Schema};
use fdx_glasso::WarmStart;
use fdx_linalg::{Matrix, Permutation};

use crate::resilience::RunHealth;

/// Wall-clock breakdown of a discovery run, one field per pipeline phase.
///
/// The paper's Figure 6 plots two series — "mean of total runtime" and
/// "mean of model runtime" — recovered here by [`FdxTimings::total_secs`]
/// and [`FdxTimings::model_secs`]; the per-phase fields are the finer
/// breakdown behind §6.6's runtime discussion.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct FdxTimings {
    /// Seconds spent in the pair transform (Algorithm 2).
    pub transform_secs: f64,
    /// Seconds spent estimating the covariance/correlation and shrinking it.
    pub covariance_secs: f64,
    /// Seconds spent in the graphical lasso solving for `Θ`.
    pub glasso_secs: f64,
    /// Seconds spent computing the global attribute order.
    pub ordering_secs: f64,
    /// Seconds spent in the `U D Uᵀ` factorization (including ridge retries).
    pub factorization_secs: f64,
    /// Seconds spent generating FDs from the autoregression matrix
    /// (Algorithm 3).
    pub generation_secs: f64,
    /// Seconds spent in data-side validation/refinement of candidate FDs.
    pub validation_secs: f64,
}

impl FdxTimings {
    /// Model seconds: everything after the pair transform (Figure 6's
    /// "model runtime" series).
    pub fn model_secs(&self) -> f64 {
        self.covariance_secs
            + self.glasso_secs
            + self.ordering_secs
            + self.factorization_secs
            + self.generation_secs
            + self.validation_secs
    }

    /// Total pipeline seconds.
    pub fn total_secs(&self) -> f64 {
        self.transform_secs + self.model_secs()
    }

    /// Phase names paired with their durations, in pipeline order.
    pub fn phases(&self) -> [(&'static str, f64); 7] {
        [
            ("transform", self.transform_secs),
            ("covariance", self.covariance_secs),
            ("glasso", self.glasso_secs),
            ("ordering", self.ordering_secs),
            ("factorization", self.factorization_secs),
            ("generation", self.generation_secs),
            ("validation", self.validation_secs),
        ]
    }

    /// Serializes the breakdown as one deterministic JSON object — the shape
    /// shared by `fdx discover --metrics` and the bench binaries.
    pub fn to_json(&self) -> String {
        let mut obj = fdx_obs::json::Obj::new().str_("kind", "timings");
        for (name, secs) in self.phases() {
            obj = obj.f64_(name, secs);
        }
        obj.f64_("model", self.model_secs())
            .f64_("total", self.total_secs())
            .finish()
    }
}

/// Everything a discovery run produces.
#[derive(Debug, Clone)]
pub struct FdxResult {
    /// The discovered functional dependencies.
    pub fds: FdSet,
    /// The autoregression matrix `B` in schema coordinates: `B[x, y]` is the
    /// weight of attribute `x` in the linear equation for attribute `y`
    /// (nonzero above the discovery threshold ⇒ edge `x → y`). This is the
    /// matrix rendered as a heatmap in the paper's Figures 3 and 5.
    pub autoregression: Matrix,
    /// The estimated (sparse) inverse covariance, schema coordinates.
    pub theta: Matrix,
    /// The global attribute order used by the factorization.
    pub order: Permutation,
    /// Estimated per-attribute noise variances `ω` (diagonal of `Ω` from
    /// Equation 5), in permuted coordinates.
    pub noise_variances: Vec<f64>,
    /// Wall-clock breakdown.
    pub timings: FdxTimings,
    /// Degradation report: which rung of the recovery ladder produced `Θ`
    /// and every recovery that fired along the way. A pristine run has
    /// `health.degraded() == false`; `fdx discover --strict` turns any
    /// degradation into a non-zero exit.
    pub health: RunHealth,
    /// The converged glasso iterate `(Θ, W)` when the run ended on a glasso
    /// rung, reusable as [`crate::FdxConfig::glasso_warm_start`] for a
    /// follow-up solve on the same dataset at a nearby λ. `None` when a
    /// fallback rung produced `Θ`.
    pub glasso_warm: Option<WarmStart>,
}

impl FdxResult {
    /// Serializes a run summary — FD/edge counts, attribute count, and the
    /// nested timing breakdown — as one deterministic JSON object. CLI
    /// `--metrics` output and the bench binaries both emit this shape.
    pub fn summary_json(&self) -> String {
        fdx_obs::json::Obj::new()
            .str_("kind", "run_summary")
            .u64_("attrs", self.autoregression.rows() as u64)
            .u64_("fds", self.fds.iter().count() as u64)
            .u64_("edges", self.fds.edge_count() as u64)
            .raw("timings", &self.timings.to_json())
            .raw("health", &self.health.to_json())
            .finish()
    }
}

/// Renders an autoregression matrix as a textual heatmap (the workspace's
/// stand-in for Figure 3/5's graphics): rows are determinants, columns are
/// determined attributes, and cell glyphs bucket `|B[x, y]|`.
pub fn render_autoregression_heatmap(b: &Matrix, schema: &Schema) -> String {
    let k = b.rows();
    assert_eq!(k, schema.len(), "matrix size must match schema");
    let name_width = schema
        .attributes()
        .iter()
        .map(|a| a.name.len())
        .max()
        .unwrap_or(4)
        .clamp(4, 24);
    let glyph = |v: f64| -> char {
        let a = v.abs();
        if a >= 0.5 {
            '#'
        } else if a >= 0.25 {
            '+'
        } else if a >= 0.1 {
            '.'
        } else {
            ' '
        }
    };
    let mut out = String::new();
    // Header: column indices (names would overflow).
    out.push_str(&" ".repeat(name_width + 2));
    for j in 0..k {
        out.push_str(&format!("{:>3}", j % 100));
    }
    out.push('\n');
    for i in 0..k {
        let name: String = schema.name(i).chars().take(name_width).collect();
        out.push_str(&format!("{name:>name_width$} |"));
        for j in 0..k {
            out.push(' ');
            out.push(' ');
            out.push(glyph(b[(i, j)]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdx_data::Schema;

    #[test]
    fn timings_sum() {
        let t = FdxTimings {
            transform_secs: 1.5,
            covariance_secs: 0.1,
            glasso_secs: 0.2,
            ordering_secs: 0.05,
            factorization_secs: 0.05,
            generation_secs: 0.05,
            validation_secs: 0.05,
        };
        assert!((t.model_secs() - 0.5).abs() < 1e-12);
        assert!((t.total_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn timings_json_shape() {
        let t = FdxTimings {
            transform_secs: 0.5,
            ..FdxTimings::default()
        };
        let json = t.to_json();
        assert!(
            json.starts_with(r#"{"kind":"timings","transform":0.5"#),
            "{json}"
        );
        for phase in [
            "covariance",
            "glasso",
            "ordering",
            "factorization",
            "generation",
            "validation",
            "model",
            "total",
        ] {
            assert!(json.contains(&format!(r#""{phase}":"#)), "{json}");
        }
    }

    #[test]
    fn heatmap_renders_buckets() {
        let schema = Schema::from_names(&["alpha", "b"]);
        let mut b = Matrix::zeros(2, 2);
        b[(0, 1)] = 0.8;
        b[(1, 0)] = 0.15;
        let s = render_autoregression_heatmap(&b, &schema);
        assert!(s.contains('#'), "strong edge should render as #:\n{s}");
        assert!(s.contains('.'), "weak edge should render as .:\n{s}");
        assert!(s.contains("alpha"));
        // Two data lines + header.
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "must match schema")]
    fn heatmap_validates_shape() {
        let schema = Schema::from_names(&["a"]);
        render_autoregression_heatmap(&Matrix::zeros(2, 2), &schema);
    }
}
