use fdx_data::{FdSet, Schema};
use fdx_linalg::{Matrix, Permutation};

/// Wall-clock breakdown of a discovery run, matching the two series of the
/// paper's Figure 6 ("mean of total runtime" vs "mean of model runtime").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdxTimings {
    /// Seconds spent in the pair transform (Algorithm 2).
    pub transform_secs: f64,
    /// Seconds spent in covariance estimation, glasso, ordering,
    /// factorization, and FD generation.
    pub model_secs: f64,
}

impl FdxTimings {
    /// Total pipeline seconds.
    pub fn total_secs(&self) -> f64 {
        self.transform_secs + self.model_secs
    }
}

/// Everything a discovery run produces.
#[derive(Debug, Clone)]
pub struct FdxResult {
    /// The discovered functional dependencies.
    pub fds: FdSet,
    /// The autoregression matrix `B` in schema coordinates: `B[x, y]` is the
    /// weight of attribute `x` in the linear equation for attribute `y`
    /// (nonzero above the discovery threshold ⇒ edge `x → y`). This is the
    /// matrix rendered as a heatmap in the paper's Figures 3 and 5.
    pub autoregression: Matrix,
    /// The estimated (sparse) inverse covariance, schema coordinates.
    pub theta: Matrix,
    /// The global attribute order used by the factorization.
    pub order: Permutation,
    /// Estimated per-attribute noise variances `ω` (diagonal of `Ω` from
    /// Equation 5), in permuted coordinates.
    pub noise_variances: Vec<f64>,
    /// Wall-clock breakdown.
    pub timings: FdxTimings,
}

/// Renders an autoregression matrix as a textual heatmap (the workspace's
/// stand-in for Figure 3/5's graphics): rows are determinants, columns are
/// determined attributes, and cell glyphs bucket `|B[x, y]|`.
pub fn render_autoregression_heatmap(b: &Matrix, schema: &Schema) -> String {
    let k = b.rows();
    assert_eq!(k, schema.len(), "matrix size must match schema");
    let name_width = schema
        .attributes()
        .iter()
        .map(|a| a.name.len())
        .max()
        .unwrap_or(4)
        .clamp(4, 24);
    let glyph = |v: f64| -> char {
        let a = v.abs();
        if a >= 0.5 {
            '#'
        } else if a >= 0.25 {
            '+'
        } else if a >= 0.1 {
            '.'
        } else {
            ' '
        }
    };
    let mut out = String::new();
    // Header: column indices (names would overflow).
    out.push_str(&" ".repeat(name_width + 2));
    for j in 0..k {
        out.push_str(&format!("{:>3}", j % 100));
    }
    out.push('\n');
    for i in 0..k {
        let name: String = schema.name(i).chars().take(name_width).collect();
        out.push_str(&format!("{name:>name_width$} |"));
        for j in 0..k {
            out.push(' ');
            out.push(' ');
            out.push(glyph(b[(i, j)]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdx_data::Schema;

    #[test]
    fn timings_sum() {
        let t = FdxTimings {
            transform_secs: 1.5,
            model_secs: 0.5,
        };
        assert_eq!(t.total_secs(), 2.0);
    }

    #[test]
    fn heatmap_renders_buckets() {
        let schema = Schema::from_names(&["alpha", "b"]);
        let mut b = Matrix::zeros(2, 2);
        b[(0, 1)] = 0.8;
        b[(1, 0)] = 0.15;
        let s = render_autoregression_heatmap(&b, &schema);
        assert!(s.contains('#'), "strong edge should render as #:\n{s}");
        assert!(s.contains('.'), "weak edge should render as .:\n{s}");
        assert!(s.contains("alpha"));
        // Two data lines + header.
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "must match schema")]
    fn heatmap_validates_shape() {
        let schema = Schema::from_names(&["a"]);
        render_autoregression_heatmap(&Matrix::zeros(2, 2), &schema);
    }
}
