use std::fmt;

use fdx_data::{Dataset, Fd, FdSet};
use fdx_linalg::{udut, LinalgError, Matrix};
use fdx_order::compute_order_weighted;

use crate::config::FdxConfig;
use crate::report::{FdxResult, FdxTimings};
use crate::resilience::{ensure_finite, estimate_precision, BudgetClock, RunHealth};
use crate::transform::pair_transform;

/// Errors from the FDX pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FdxError {
    /// The dataset is too small for pair sampling / structure learning.
    InsufficientData {
        /// Rows present.
        rows: usize,
        /// Attributes present.
        attrs: usize,
    },
    /// A numerical kernel failed even after regularization retries.
    Numerical(LinalgError),
    /// A pipeline stage produced NaN or ±∞ that no recovery could absorb
    /// (the finite-ness guards of `crate::resilience`).
    NonFinite {
        /// The guarded stage that tripped (e.g. `"covariance"`).
        stage: &'static str,
    },
    /// The run exceeded [`FdxConfig::time_budget`]. Checked between phases,
    /// so the overshoot is bounded by the length of one phase.
    BudgetExceeded {
        /// The phase that was about to start when the budget ran out.
        phase: &'static str,
        /// Wall-clock seconds consumed at the check.
        elapsed_secs: f64,
        /// The configured budget in seconds.
        budget_secs: f64,
    },
    /// The ingest working set exceeded [`FdxConfig::memory_budget`] and the
    /// sampled-rows degradation rung bottomed out (`fdx_data::ingest`).
    MemoryBudget {
        /// The ingest stage that was charging when the budget bottomed out.
        stage: &'static str,
        /// Bytes charged at that point.
        bytes: u64,
    },
    /// Loading the dataset from a path failed before any statistics were
    /// computed (I/O, encoding, header, or an aborting bad row).
    Ingest {
        /// Rendered `fdx_data::IngestError`.
        detail: String,
    },
}

impl fmt::Display for FdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdxError::InsufficientData { rows, attrs } => write!(
                f,
                "FDX needs at least 2 rows and 2 attributes, got {rows} rows x {attrs} attributes"
            ),
            FdxError::Numerical(e) => write!(f, "numerical failure in structure learning: {e}"),
            FdxError::NonFinite { stage } => {
                write!(f, "non-finite values (NaN or infinity) at stage {stage}")
            }
            FdxError::BudgetExceeded {
                phase,
                elapsed_secs,
                budget_secs,
            } => write!(
                f,
                "time budget exhausted before {phase}: {elapsed_secs:.3}s elapsed of {budget_secs:.3}s allowed"
            ),
            FdxError::MemoryBudget { stage, bytes } => write!(
                f,
                "memory budget exceeded in ingest stage '{stage}' ({bytes} bytes charged)"
            ),
            FdxError::Ingest { detail } => write!(f, "ingest failed: {detail}"),
        }
    }
}

impl std::error::Error for FdxError {}

impl From<LinalgError> for FdxError {
    fn from(e: LinalgError) -> Self {
        FdxError::Numerical(e)
    }
}

impl From<fdx_data::IngestError> for FdxError {
    fn from(e: fdx_data::IngestError) -> Self {
        match e {
            fdx_data::IngestError::MemoryBudget { stage, bytes } => {
                FdxError::MemoryBudget { stage, bytes }
            }
            other => FdxError::Ingest {
                detail: other.to_string(),
            },
        }
    }
}

/// The FDX discovery engine (paper Algorithm 1).
///
/// Construct with a [`FdxConfig`] and call [`Fdx::discover`] on any
/// [`Dataset`]. The engine is stateless between calls; the configuration
/// fixes sampling seeds, sparsity, ordering heuristic, and the
/// autoregression threshold.
#[derive(Debug, Clone, Default)]
pub struct Fdx {
    config: FdxConfig,
}

impl Fdx {
    /// Creates an engine with the given configuration.
    pub fn new(config: FdxConfig) -> Fdx {
        Fdx { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FdxConfig {
        &self.config
    }

    /// Runs the full pipeline: transform → covariance → `Θ` → ordering →
    /// `U D Uᵀ` → FD generation.
    pub fn discover(&self, ds: &Dataset) -> Result<FdxResult, FdxError> {
        let k = ds.ncols();
        if ds.nrows() < 2 || k < 2 {
            return Err(FdxError::InsufficientData {
                rows: ds.nrows(),
                attrs: k,
            });
        }
        let cfg = &self.config;
        let run_span = fdx_obs::Span::enter("fdx.discover");
        let budget = BudgetClock::new(&run_span, cfg.time_budget);
        let mut timings = FdxTimings::default();
        let mut health = RunHealth::default();

        // Step 1: pair transform (Algorithm 2). The pipeline-level thread
        // request flows down unless the transform pinned its own.
        let stats = {
            let span = fdx_obs::Span::enter("fdx.transform");
            let mut tcfg = cfg.transform.clone();
            if tcfg.threads.is_none() {
                tcfg.threads = cfg.threads;
            }
            let stats = pair_transform(ds, &tcfg);
            timings.transform_secs = span.elapsed_secs();
            stats
        };
        budget.check("covariance")?;

        // Step 2a: covariance estimation with optional shrinkage.
        let s = {
            let span = fdx_obs::Span::enter("fdx.covariance");
            let mut s = if cfg.use_correlation {
                stats.correlation()
            } else {
                stats.covariance()
            };
            if cfg.shrinkage > 0.0 {
                // S ← (1−α) S + α I: bounds Θ when FD chains drive S singular.
                let alpha = cfg.shrinkage.min(1.0);
                s.scale_mut(1.0 - alpha);
                s.add_diag_mut(alpha);
            }
            if fdx_obs::faults::fire("covariance.inject_nan") && s.rows() > 0 {
                s[(0, 0)] = f64::NAN;
            }
            timings.covariance_secs = span.elapsed_secs();
            s
        };
        // A NaN here (degenerate agreement statistics) has no recovery:
        // every downstream estimate would inherit it silently.
        ensure_finite("covariance", &s)?;
        budget.check("structure")?;

        // Step 2b: sparse inverse covariance, through the recovery ladder
        // (`crate::resilience`): configured glasso → relaxed retry → direct
        // inversion → neighborhood selection. Each glasso solve opens its
        // own `fdx.glasso` span and emits per-sweep convergence events.
        let (theta, glasso_warm) = {
            let span = fdx_obs::Span::enter("fdx.structure");
            let pair = estimate_precision(&s, cfg, &mut health)?;
            timings.glasso_secs = span.elapsed_secs();
            pair
        };
        budget.check("ordering")?;

        // Step 3a: global attribute order.
        // Normalize Θ to unit diagonal first so the autoregression
        // coefficients (and therefore `threshold`) are scale-free.
        let (theta_n, order) = {
            let span = fdx_obs::Span::enter("fdx.ordering");
            let theta_n = normalize_diagonal(&theta);
            // Agreement rates break ordering ties: frequently-agreeing
            // (determined) attributes are eliminated first and land late in
            // the global order, key-like attributes early.
            let rates = stats.agreement_rates();
            let order =
                compute_order_weighted(&theta_n, cfg.support_threshold, cfg.ordering, Some(&rates));
            timings.ordering_secs = span.elapsed_secs();
            (theta_n, order)
        };
        budget.check("factorization")?;

        // Step 3b: UDUᵀ factorization (with a ridge retry guard).
        let factor = {
            let span = fdx_obs::Span::enter("fdx.factorization");
            let first = if fdx_obs::faults::fire("udut.force_not_pd") {
                Err(LinalgError::NotPositiveDefinite {
                    pivot: 0,
                    value: 0.0,
                })
            } else {
                udut(&theta_n, &order)
            };
            let factor = match first {
                Ok(f) => f,
                Err(LinalgError::NotPositiveDefinite { .. }) => {
                    // Glasso output should be PD; guard with a ridge anyway.
                    fdx_obs::counter_add("fdx.udut.ridge_retries", 1);
                    health.udut_ridge_retries += 1;
                    health.note(
                        "UDUᵀ factorization hit a non-PD pivot; retried with ridge".to_string(),
                    );
                    let mut ridged = theta_n.clone();
                    ridged.add_diag_mut(1e-8);
                    udut(&ridged, &order)?
                }
                Err(e) => return Err(e.into()),
            };
            timings.factorization_secs = span.elapsed_secs();
            factor
        };
        let b_perm = factor.autoregression();
        ensure_finite("autoregression", &b_perm)?;
        budget.check("generation")?;

        // Step 4: FD generation (Algorithm 3) on the permuted B, mapped back
        // to schema attribute ids.
        let gen_span = fdx_obs::Span::enter("fdx.generation");
        let mut candidate_edges = 0u64;
        let mut fds = FdSet::new();
        for j in 0..k {
            let rhs = order.image(j);
            let mut candidates: Vec<(usize, f64)> = (0..j)
                .filter_map(|i| {
                    let w = b_perm[(i, j)];
                    (w.abs() > cfg.threshold).then_some((order.image(i), w.abs()))
                })
                .collect();
            if candidates.is_empty() {
                continue;
            }
            candidate_edges += candidates.len() as u64;
            // Relative pruning: drop weak echoes of the dominant determinant.
            let strongest = candidates.iter().map(|&(_, w)| w).fold(0.0_f64, f64::max);
            candidates.retain(|&(_, w)| w >= cfg.relative_keep * strongest);
            // Parsimony cap: keep the strongest coefficients only.
            if candidates.len() > cfg.max_lhs {
                candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
                candidates.truncate(cfg.max_lhs);
            }
            fds.insert(Fd::new(candidates.into_iter().map(|(a, _)| a), rhs));
        }
        fdx_obs::counter_add("fdx.generation.candidate_edges", candidate_edges);
        fdx_obs::counter_add("fdx.generation.kept_edges", fds.edge_count() as u64);
        timings.generation_secs = gen_span.elapsed_secs();
        drop(gen_span);

        if cfg.validate {
            budget.check("validation")?;
            let span = fdx_obs::Span::enter("fdx.validation");
            let opts = crate::validate::RefineOptions {
                threads: cfg.threads,
                ..Default::default()
            };
            fds = crate::validate::refine_with_options(ds, &fds, cfg.min_lift, opts);
            timings.validation_secs = span.elapsed_secs();
        }

        // Report B in original schema coordinates.
        let mut b_orig = Matrix::zeros(k, k);
        for i in 0..k {
            for j in 0..k {
                b_orig[(order.image(i), order.image(j))] = b_perm[(i, j)];
            }
        }

        health.record_metrics();
        Ok(FdxResult {
            fds,
            autoregression: b_orig,
            theta,
            order,
            noise_variances: factor.d.iter().map(|&d| 1.0 / d.max(1e-12)).collect(),
            timings,
            health,
            glasso_warm,
        })
    }
}

/// Scales a symmetric PD matrix to unit diagonal: `D^{-1/2} Θ D^{-1/2}`.
fn normalize_diagonal(theta: &Matrix) -> Matrix {
    let k = theta.rows();
    let d: Vec<f64> = (0..k).map(|i| theta[(i, i)].max(1e-12).sqrt()).collect();
    let mut out = Matrix::zeros(k, k);
    for i in 0..k {
        for j in 0..k {
            out[(i, j)] = theta[(i, j)] / (d[i] * d[j]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FdxConfig;

    fn city_state_rows() -> Dataset {
        // zip -> city -> state with solid support: 4 states x 2 cities x
        // 3 zips x 4 rows each = 96 rows.
        let mut rows: Vec<[String; 3]> = Vec::new();
        for s in 0..4 {
            for c in 0..2 {
                for z in 0..3 {
                    for _ in 0..4 {
                        rows.push([
                            format!("z{s}{c}{z}"),
                            format!("city{s}{c}"),
                            format!("state{s}"),
                        ]);
                    }
                }
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| vec![r[0].as_str(), r[1].as_str(), r[2].as_str()])
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["zip", "city", "state"], &slices)
    }

    #[test]
    fn discovers_zip_city_chain() {
        let ds = city_state_rows();
        let r = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
        let edges = r.fds.edge_set();
        let undirected = |a: usize, b: usize| edges.contains(&(a, b)) || edges.contains(&(b, a));
        // The chain's two dependencies must be recovered; their orientation
        // along a pure chain is only weakly identified (see Figure 3's
        // discussion: ZipCode itself comes out *determined* there).
        assert!(
            undirected(0, 1),
            "zip—city missing; FDs:\n{}",
            r.fds.render(ds.schema())
        );
        assert!(
            undirected(1, 2),
            "city—state missing; FDs:\n{}",
            r.fds.render(ds.schema())
        );
    }

    #[test]
    fn key_hub_orients_outward() {
        // A key column determining three independent attributes: FDX must
        // orient all edges away from the key (the Figure 3 ProviderNumber
        // pattern).
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let mut assignments = Vec::new();
        for kv in 0..24 {
            assignments.push([
                format!("k{kv}"),
                format!("x{}", rng.gen_range(0..4)),
                format!("y{}", rng.gen_range(0..3)),
                format!("z{}", rng.gen_range(0..2)),
            ]);
        }
        let mut rows = Vec::new();
        for (i, a) in assignments.iter().enumerate() {
            for _ in 0..(3 + i % 3) {
                rows.push(a.clone());
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["key", "x", "y", "z"], &slices);
        let r = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
        let edges = r.fds.edge_set();
        assert!(
            edges.contains(&(0, 1)) && edges.contains(&(0, 2)) && edges.contains(&(0, 3)),
            "key should determine x, y, z; FDs:\n{}",
            r.fds.render(ds.schema())
        );
        assert!(
            !edges.iter().any(|&(_, y)| y == 0),
            "nothing determines the key; FDs:\n{}",
            r.fds.render(ds.schema())
        );
    }

    #[test]
    fn rejects_tiny_inputs() {
        let one_col = Dataset::from_string_rows(&["a"], &[&["1"], &["2"]]);
        assert!(matches!(
            Fdx::new(FdxConfig::default()).discover(&one_col),
            Err(FdxError::InsufficientData { .. })
        ));
        let one_row = Dataset::from_string_rows(&["a", "b"], &[&["1", "2"]]);
        assert!(matches!(
            Fdx::new(FdxConfig::default()).discover(&one_row),
            Err(FdxError::InsufficientData { .. })
        ));
    }

    #[test]
    fn independent_columns_give_no_fds() {
        // Two genuinely independent uniform columns (separate RNG streams).
        use rand::{Rng, SeedableRng};
        let mut ra = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let mut rb = rand_chacha::ChaCha8Rng::seed_from_u64(222);
        let rows: Vec<[String; 2]> = (0..200)
            .map(|_| {
                [
                    format!("a{}", ra.gen_range(0..8)),
                    format!("b{}", rb.gen_range(0..8)),
                ]
            })
            .collect();
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| vec![r[0].as_str(), r[1].as_str()])
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["a", "b"], &slices);
        let r = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
        assert!(
            r.fds.is_empty(),
            "expected no FDs, got:\n{}",
            r.fds.render(ds.schema())
        );
    }

    #[test]
    fn autoregression_matrix_shape_and_order() {
        let ds = city_state_rows();
        let r = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
        assert_eq!(r.autoregression.shape(), (3, 3));
        assert_eq!(r.order.len(), 3);
        assert_eq!(r.theta.shape(), (3, 3));
        assert_eq!(r.noise_variances.len(), 3);
        assert!(r.timings.transform_secs >= 0.0);
    }

    #[test]
    fn max_lhs_caps_determinant_size() {
        let ds = city_state_rows();
        let mut cfg = FdxConfig::default();
        cfg.max_lhs = 1;
        let r = Fdx::new(cfg).discover(&ds).unwrap();
        for fd in r.fds.iter() {
            assert!(fd.lhs().len() <= 1);
        }
    }

    #[test]
    fn clean_run_reports_pristine_health() {
        let ds = city_state_rows();
        let r = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
        assert!(!r.health.degraded(), "{:?}", r.health);
        assert_eq!(r.health.rung, crate::resilience::RecoveryRung::Glasso);
        assert!(r.health.recoveries.is_empty());
    }

    #[test]
    fn non_converged_glasso_is_recorded_not_fatal() {
        let ds = city_state_rows();
        let _f = fdx_obs::faults::arm_times("glasso.force_no_converge", 1);
        let r = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
        assert!(r.health.degraded());
        assert_eq!(r.health.rung, crate::resilience::RecoveryRung::RidgedRetry);
        assert!(!r.health.recoveries.is_empty());
    }

    #[test]
    fn injected_covariance_nan_is_a_typed_error() {
        let ds = city_state_rows();
        let _f = fdx_obs::faults::arm("covariance.inject_nan");
        let err = Fdx::new(FdxConfig::default()).discover(&ds).unwrap_err();
        assert_eq!(
            err,
            FdxError::NonFinite {
                stage: "covariance"
            }
        );
    }

    #[test]
    fn forced_not_pd_triggers_recorded_ridge_retry() {
        let ds = city_state_rows();
        let _f = fdx_obs::faults::arm_times("udut.force_not_pd", 1);
        let r = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
        assert_eq!(r.health.udut_ridge_retries, 1);
        assert!(r.health.degraded());
    }

    #[test]
    fn budget_exhaustion_is_a_typed_error() {
        let ds = city_state_rows();
        let _f = fdx_obs::faults::arm_value("clock.skew", 1e6);
        let err = Fdx::new(FdxConfig::default().with_time_budget(1.0))
            .discover(&ds)
            .unwrap_err();
        assert!(matches!(
            err,
            FdxError::BudgetExceeded {
                phase: "covariance",
                ..
            }
        ));
    }

    #[test]
    fn result_carries_reusable_glasso_warm_iterate() {
        let ds = city_state_rows();
        let r = Fdx::new(FdxConfig::with_seed(7).with_sparsity(0.004))
            .discover(&ds)
            .unwrap();
        let warm = r
            .glasso_warm
            .clone()
            .expect("clean run ends on a glasso rung");
        // The warm iterate IS the run's Θ — feeding it back must be valid.
        assert_eq!(warm.theta[(0, 1)].to_bits(), r.theta[(0, 1)].to_bits());
        let warmed = Fdx::new(
            FdxConfig::with_seed(7)
                .with_sparsity(0.006)
                .with_glasso_warm_start(warm),
        )
        .discover(&ds)
        .unwrap();
        // A warm start may change the descent path, never the discovery:
        // the nearby-λ solve lands on the same FD set.
        assert_eq!(warmed.fds, r.fds);
        // And the warmed run is itself deterministic: same config (incl.
        // the same warm start) reproduces the same bits.
        let again = Fdx::new(
            FdxConfig::with_seed(7)
                .with_sparsity(0.006)
                .with_glasso_warm_start(r.glasso_warm.clone().unwrap()),
        )
        .discover(&ds)
        .unwrap();
        assert_eq!(
            warmed.theta[(0, 1)].to_bits(),
            again.theta[(0, 1)].to_bits()
        );
    }

    #[test]
    fn higher_threshold_is_more_conservative() {
        let ds = city_state_rows();
        let lo = Fdx::new(FdxConfig::default().with_threshold(0.05))
            .discover(&ds)
            .unwrap();
        let hi = Fdx::new(FdxConfig::default().with_threshold(0.9))
            .discover(&ds)
            .unwrap();
        assert!(hi.fds.edge_count() <= lo.fds.edge_count());
    }
}
