//! Graceful degradation for the FDX pipeline.
//!
//! FDX's value proposition is surviving *noisy* data (paper §1, §4.2), so
//! the pipeline must not fall over when the numerics do: a near-singular
//! pair covariance can stall the graphical lasso (Friedman–Hastie–Tibshirani
//! 2008 document non-convergence on such inputs), a non-PD iterate can break
//! the `U D Uᵀ` factorization, and an adversarial input can make any of it
//! arbitrarily slow. This module centralizes the recovery policy:
//!
//! * a deterministic **fallback ladder** for structure learning
//!   ([`estimate_precision`]), descending only as far as the input forces:
//!   1. graphical lasso exactly as configured,
//!   2. retry with an escalated ridge and relaxed tolerance
//!      ([`GlassoConfig::relaxed_retry`]),
//!   3. ridge-stabilized direct inversion
//!      (`fdx_glasso::precision_from_covariance`),
//!   4. Meinshausen–Bühlmann neighborhood selection as a last resort:
//!      only the *support* of `Θ` is recovered (PAPERS.md; the regression
//!      estimator is consistent for the conditional-independence graph even
//!      when the likelihood solver is numerically hopeless), and a
//!      diagonally dominant surrogate `Θ` is built from it;
//! * **finite-ness guards** at phase boundaries ([`ensure_finite`]) so a
//!   NaN or ±∞ produced by one stage becomes a typed
//!   [`FdxError::NonFinite`] instead of silently poisoning FD generation;
//! * a per-run **wall-clock budget** ([`BudgetClock`], configured by
//!   [`FdxConfig::time_budget`]) checked between phases, yielding a typed
//!   [`FdxError::BudgetExceeded`];
//! * a [`RunHealth`] report attached to every successful
//!   [`crate::FdxResult`] recording exactly which recoveries fired, so
//!   callers (and `fdx discover --strict`) can distinguish a pristine run
//!   from a degraded-but-usable one.
//!
//! Every branch here is reachable deterministically through the
//! fault-injection points in [`fdx_obs::faults`]:
//! `glasso.force_no_converge` (drives rungs 2+), `covariance.inject_nan`
//! (trips the covariance guard), `udut.force_not_pd` (forces the
//! factorization ridge retry), `inversion.force_fail` (skips rung 3 so rung
//! 4 runs), and `clock.skew` (advances the budget clock without sleeping).

use std::fmt;

use fdx_glasso::{
    graphical_lasso, neighborhood_selection_threads, precision_from_covariance_report,
    GlassoConfig, WarmStart,
};
use fdx_linalg::Matrix;
use fdx_obs::faults;

use crate::config::FdxConfig;
use crate::discover::FdxError;

/// Which rung of the fallback ladder produced the precision estimate.
///
/// Ordered from least to most degraded; [`RecoveryRung::index`] gives the
/// 1-based rung number used in metrics and CLI output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryRung {
    /// Rung 1: graphical lasso exactly as configured.
    Glasso,
    /// Rung 2: glasso retried with escalated ridge and relaxed tolerance.
    RidgedRetry,
    /// Rung 3: ridge-stabilized direct inversion of the covariance.
    DirectInversion,
    /// Rung 4: Meinshausen–Bühlmann neighborhood selection; only the support
    /// of `Θ` is trustworthy, coefficient magnitudes are surrogate values.
    NeighborhoodSelection,
}

impl RecoveryRung {
    /// Stable lowercase label used in JSON and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryRung::Glasso => "glasso",
            RecoveryRung::RidgedRetry => "ridged_retry",
            RecoveryRung::DirectInversion => "direct_inversion",
            RecoveryRung::NeighborhoodSelection => "neighborhood_selection",
        }
    }

    /// 1-based ladder position.
    pub fn index(&self) -> u8 {
        match self {
            RecoveryRung::Glasso => 1,
            RecoveryRung::RidgedRetry => 2,
            RecoveryRung::DirectInversion => 3,
            RecoveryRung::NeighborhoodSelection => 4,
        }
    }
}

impl fmt::Display for RecoveryRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/4 ({})", self.index(), self.label())
    }
}

/// Health report of one `discover` run: every recovery that fired.
///
/// A freshly constructed report describes a pristine run; the pipeline
/// downgrades it as recoveries fire. [`RunHealth::degraded`] is the single
/// predicate behind `fdx discover --strict`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunHealth {
    /// Ladder rung that produced the precision estimate.
    pub rung: RecoveryRung,
    /// Whether the structure-learning solve that was finally used met its
    /// convergence criterion.
    pub glasso_converged: bool,
    /// Ridge escalations inside the structure-learning solves (reported by
    /// `fdx_glasso`).
    pub ridge_escalations: u32,
    /// Ridge retries of the `U D Uᵀ` factorization.
    pub udut_ridge_retries: u32,
    /// Connected components found by glasso screening (0 when structure
    /// learning never reached a screened solve).
    pub glasso_components: usize,
    /// Largest screened component — the serial bottleneck of the parallel
    /// structure-learning solve.
    pub glasso_largest_component: usize,
    /// Finite-ness guard trips that were *recovered from* (stage names).
    /// Unrecoverable trips surface as [`FdxError::NonFinite`] instead.
    pub guard_trips: Vec<String>,
    /// Human-readable log of every recovery, in firing order.
    pub recoveries: Vec<String>,
    /// Ingest health when the dataset was loaded through the chunked
    /// out-of-core reader (`fdx_data::ingest`); `None` for resident
    /// datasets handed to [`crate::Fdx::discover`] directly.
    pub ingest: Option<fdx_data::IngestHealth>,
}

impl Default for RunHealth {
    fn default() -> Self {
        RunHealth {
            rung: RecoveryRung::Glasso,
            glasso_converged: true,
            ridge_escalations: 0,
            udut_ridge_retries: 0,
            glasso_components: 0,
            glasso_largest_component: 0,
            guard_trips: Vec::new(),
            recoveries: Vec::new(),
            ingest: None,
        }
    }
}

impl RunHealth {
    /// True iff any recovery fired: the run produced a usable result, but
    /// not on the configured happy path.
    pub fn degraded(&self) -> bool {
        self.rung != RecoveryRung::Glasso
            || !self.glasso_converged
            || self.ridge_escalations > 0
            || self.udut_ridge_retries > 0
            || !self.guard_trips.is_empty()
            || self.ingest.as_ref().is_some_and(|i| i.degraded())
    }

    /// Stable outcome code for request journals and service replies:
    /// `"ok"` for a pristine run, `"degraded"` when any recovery fired.
    /// Failed runs never reach a `RunHealth`; they carry a typed
    /// [`FdxError`] code instead.
    pub fn outcome_code(&self) -> &'static str {
        if self.degraded() {
            "degraded"
        } else {
            "ok"
        }
    }

    /// Records a recovery note (also mirrored to the obs event log).
    pub(crate) fn note(&mut self, msg: String) {
        fdx_obs::event(
            "fdx.resilience.recovery",
            &[("detail", fdx_obs::Field::S(msg.clone()))],
        );
        self.recoveries.push(msg);
    }

    /// Records a *recovered* finite-ness guard trip at `stage`.
    pub(crate) fn trip_guard(&mut self, stage: &str) {
        fdx_obs::counter_add("fdx.resilience.guard_trips", 1);
        self.guard_trips.push(stage.to_string());
        self.note(format!("non-finite values detected at {stage}; recovering"));
    }

    /// Pushes the report's scalar facets into the global metric registry
    /// (rung gauge + degradation counters). Called once per run by the
    /// pipeline; a no-op while recording is disabled.
    pub(crate) fn record_metrics(&self) {
        fdx_obs::gauge_set("fdx.resilience.rung", self.rung.index() as f64);
        if self.glasso_components > 0 {
            fdx_obs::gauge_set("fdx.glasso.components", self.glasso_components as f64);
            fdx_obs::gauge_set(
                "fdx.glasso.largest_component",
                self.glasso_largest_component as f64,
            );
        }
        if self.degraded() {
            fdx_obs::counter_add("fdx.resilience.degraded_runs", 1);
        }
    }

    /// One deterministic JSON object (the `--metrics` JSONL shape).
    pub fn to_json(&self) -> String {
        let mut obj = fdx_obs::json::Obj::new()
            .str_("kind", "health")
            .u64_("rung", self.rung.index() as u64)
            .str_("rung_label", self.rung.label())
            .bool_("glasso_converged", self.glasso_converged)
            .u64_("ridge_escalations", self.ridge_escalations as u64)
            .u64_("udut_ridge_retries", self.udut_ridge_retries as u64)
            .u64_("glasso_components", self.glasso_components as u64)
            .u64_(
                "glasso_largest_component",
                self.glasso_largest_component as u64,
            )
            .raw(
                "guard_trips",
                &fdx_obs::json::array(
                    self.guard_trips
                        .iter()
                        .map(|g| format!("\"{}\"", fdx_obs::json::escape(g))),
                ),
            )
            .raw(
                "recoveries",
                &fdx_obs::json::array(
                    self.recoveries
                        .iter()
                        .map(|r| format!("\"{}\"", fdx_obs::json::escape(r))),
                ),
            );
        if let Some(ingest) = &self.ingest {
            obj = obj.raw("ingest", &ingest.to_json());
        }
        obj.bool_("degraded", self.degraded()).finish()
    }

    /// Multi-line human-readable rendering (the `fdx discover` footer).
    pub fn render(&self) -> String {
        let mut out = format!(
            "health: {} | rung {} | glasso {} | ridge escalations {} | udut retries {}\n",
            if self.degraded() { "DEGRADED" } else { "ok" },
            self.rung,
            if self.glasso_converged {
                "converged"
            } else {
                "NOT converged"
            },
            self.ridge_escalations,
            self.udut_ridge_retries,
        );
        if let Some(ingest) = &self.ingest {
            out.push_str("  ");
            out.push_str(&ingest.render());
            out.push('\n');
        }
        for r in &self.recoveries {
            out.push_str("  - ");
            out.push_str(r);
            out.push('\n');
        }
        out
    }
}

/// The phase-boundary wall-clock budget.
///
/// Reads the pipeline's root span (always started, whether or not metric
/// recording is on) plus the `clock.skew` fault payload, so resilience
/// tests can exhaust a budget without sleeping.
pub(crate) struct BudgetClock<'a> {
    span: &'a fdx_obs::Span,
    budget_secs: Option<f64>,
}

impl<'a> BudgetClock<'a> {
    pub(crate) fn new(span: &'a fdx_obs::Span, budget_secs: Option<f64>) -> BudgetClock<'a> {
        BudgetClock { span, budget_secs }
    }

    /// Seconds the run has consumed (including injected skew).
    pub(crate) fn elapsed_secs(&self) -> f64 {
        self.span.elapsed_secs() + faults::skew_secs()
    }

    /// Fails with [`FdxError::BudgetExceeded`] when the budget is spent.
    /// Called between phases: a phase always runs to completion, so the
    /// overshoot is bounded by one phase, never by the whole run.
    pub(crate) fn check(&self, phase: &'static str) -> Result<(), FdxError> {
        let Some(budget) = self.budget_secs else {
            return Ok(());
        };
        let elapsed = self.elapsed_secs();
        if elapsed > budget {
            fdx_obs::counter_add("fdx.resilience.budget_exceeded", 1);
            return Err(FdxError::BudgetExceeded {
                phase,
                elapsed_secs: elapsed,
                budget_secs: budget,
            });
        }
        Ok(())
    }
}

/// Returns a typed error unless every entry of `m` is finite.
///
/// The check is O(k²) on k×k matrices — invisible next to the O(k³)
/// factorizations it guards — and turns the worst numerical failure mode
/// (NaN contaminating every downstream coefficient while the pipeline
/// "succeeds") into an explicit [`FdxError::NonFinite`].
pub(crate) fn ensure_finite(stage: &'static str, m: &Matrix) -> Result<(), FdxError> {
    if matrix_is_finite(m) {
        Ok(())
    } else {
        fdx_obs::counter_add("fdx.resilience.guard_trips", 1);
        Err(FdxError::NonFinite { stage })
    }
}

fn matrix_is_finite(m: &Matrix) -> bool {
    (0..m.rows()).all(|i| (0..m.cols()).all(|j| m[(i, j)].is_finite()))
}

/// The structure-learning fallback ladder (tentpole of the recovery
/// subsystem): estimates `Θ` from the pair covariance `s`, descending the
/// ladder only as far as the input forces, and records every step into
/// `health`.
///
/// Postcondition on success: the returned matrix is square, symmetric to
/// solver tolerance, entirely finite, and positive definite enough for the
/// downstream `U D Uᵀ` factorization's own ridge guard.
///
/// Alongside `Θ` the ladder returns the converged glasso iterate `(Θ, W)`
/// when one exists (rungs 1–2); callers that sweep λ on the same dataset
/// can feed it back through [`FdxConfig::glasso_warm_start`]. Fallback
/// rungs yield `None` — their output is not a glasso fixed point.
pub(crate) fn estimate_precision(
    s: &Matrix,
    cfg: &FdxConfig,
    health: &mut RunHealth,
) -> Result<(Matrix, Option<WarmStart>), FdxError> {
    let glasso_cfg = GlassoConfig {
        lambda: cfg.sparsity,
        threads: cfg.threads,
        warm_start: cfg.glasso_warm_start.clone(),
        ..GlassoConfig::default()
    };

    // Rung 1: the configured solve. A failed-but-finite iterate is kept to
    // warm-start rung 2 — the retry resumes where the solve plateaued
    // instead of repeating the whole descent from cold.
    let mut warm_start: Option<WarmStart> = None;
    match graphical_lasso(s, &glasso_cfg) {
        Ok(r) => {
            health.glasso_converged = r.converged;
            health.ridge_escalations += r.ridge_escalations;
            health.glasso_components = r.components;
            health.glasso_largest_component = r.largest_component;
            if r.converged && matrix_is_finite(&r.theta) {
                health.rung = RecoveryRung::Glasso;
                let warm = WarmStart {
                    theta: r.theta.clone(),
                    w: r.w,
                };
                return Ok((r.theta, Some(warm)));
            }
            if !r.converged {
                fdx_obs::counter_add("fdx.glasso.not_converged", 1);
                health.note(format!(
                    "glasso did not converge in {} sweeps; retrying with relaxed tolerance",
                    r.iterations
                ));
                if matrix_is_finite(&r.theta) && matrix_is_finite(&r.w) {
                    warm_start = Some(WarmStart {
                        theta: r.theta,
                        w: r.w,
                    });
                }
            } else {
                health.trip_guard("glasso.theta");
            }
        }
        Err(e) => {
            health.note(format!(
                "glasso failed ({e}); retrying with relaxed tolerance"
            ));
        }
    }

    // Rung 2: escalated ridge + relaxed tolerance, warm-started from rung
    // 1's final iterate when one survived.
    let retry_cfg = GlassoConfig {
        warm_start,
        ..glasso_cfg.relaxed_retry()
    };
    match graphical_lasso(s, &retry_cfg) {
        Ok(r) if r.converged && matrix_is_finite(&r.theta) => {
            health.rung = RecoveryRung::RidgedRetry;
            health.glasso_converged = true;
            health.ridge_escalations += r.ridge_escalations.max(1);
            health.glasso_components = r.components;
            health.glasso_largest_component = r.largest_component;
            health.note("relaxed-tolerance glasso retry converged".to_string());
            let warm = WarmStart {
                theta: r.theta.clone(),
                w: r.w,
            };
            return Ok((r.theta, Some(warm)));
        }
        Ok(r) => {
            if r.converged {
                health.trip_guard("glasso.retry.theta");
            } else {
                health.note(
                    "relaxed glasso retry still did not converge; falling back to direct inversion"
                        .to_string(),
                );
            }
        }
        Err(e) => {
            health.note(format!("relaxed glasso retry failed ({e})"));
        }
    }

    // Rung 3: ridge-stabilized direct inversion (the λ = 0 fast path, run
    // with a deliberately generous starting ridge).
    if faults::fire("inversion.force_fail") {
        health.note("direct inversion unavailable (fault injected)".to_string());
    } else {
        match precision_from_covariance_report(s, 1e-4) {
            Ok(inv) if matrix_is_finite(&inv.theta) => {
                health.rung = RecoveryRung::DirectInversion;
                health.glasso_converged = false;
                health.ridge_escalations += inv.escalations;
                health.note(format!(
                    "recovered Θ by direct inversion (ridge {:.1e})",
                    inv.ridge_used
                ));
                return Ok((inv.theta, None));
            }
            Ok(_) => {
                health.trip_guard("inversion.theta");
            }
            Err(e) => {
                health.note(format!("direct inversion failed ({e})"));
            }
        }
    }

    // Rung 4: Meinshausen–Bühlmann neighborhood selection. Recovers only
    // the support; magnitudes are surrogate values from a diagonally
    // dominant reconstruction, so downstream FDs are flagged as degraded.
    let lambda = if cfg.sparsity > 0.0 {
        cfg.sparsity
    } else {
        0.01
    };
    match neighborhood_selection_threads(s, lambda, cfg.threads) {
        Ok(adj) => {
            health.rung = RecoveryRung::NeighborhoodSelection;
            health.glasso_converged = false;
            health.note(format!(
                "recovered support only, via neighborhood selection (λ = {lambda})"
            ));
            Ok((support_surrogate_theta(&adj), None))
        }
        Err(e) => {
            health.note(format!("neighborhood selection failed ({e}); no rung left"));
            Err(FdxError::Numerical(e))
        }
    }
}

/// Builds a symmetric positive definite surrogate `Θ` from a 0/1 adjacency
/// matrix: unit diagonal, off-diagonal `−c` on edges with
/// `c = 0.9 / max_degree`. Strict diagonal dominance guarantees positive
/// definiteness, so the downstream factorization always succeeds; the
/// resulting autoregression weights are uniform by construction — only the
/// support carries information, which is exactly what rung 4 promises.
fn support_surrogate_theta(adj: &Matrix) -> Matrix {
    let k = adj.rows();
    let max_degree = (0..k)
        // fdx-allow: L002 adjacency entries are exact 0.0/1.0 literals
        .map(|i| (0..k).filter(|&j| j != i && adj[(i, j)] != 0.0).count())
        .max()
        .unwrap_or(0);
    let c = if max_degree == 0 {
        0.0
    } else {
        0.9 / max_degree as f64
    };
    let mut theta = Matrix::zeros(k, k);
    for i in 0..k {
        theta[(i, i)] = 1.0;
        for j in 0..k {
            // fdx-allow: L002 adjacency entries are exact 0.0/1.0 literals
            if j != i && adj[(i, j)] != 0.0 {
                theta[(i, j)] = -c;
            }
        }
    }
    theta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[1.0, 0.4, 0.2], &[0.4, 1.0, 0.3], &[0.2, 0.3, 1.0]])
    }

    #[test]
    fn pristine_health_is_not_degraded() {
        let h = RunHealth::default();
        assert!(!h.degraded());
        assert_eq!(h.rung, RecoveryRung::Glasso);
        let json = h.to_json();
        assert!(json.contains(r#""kind":"health""#), "{json}");
        assert!(json.contains(r#""degraded":false"#), "{json}");
        assert!(h.render().starts_with("health: ok"), "{}", h.render());
    }

    #[test]
    fn any_recovery_marks_degraded() {
        for mutate in [
            (|h: &mut RunHealth| h.rung = RecoveryRung::DirectInversion) as fn(&mut RunHealth),
            |h| h.glasso_converged = false,
            |h| h.ridge_escalations = 1,
            |h| h.udut_ridge_retries = 1,
            |h| h.guard_trips.push("covariance".to_string()),
        ] {
            let mut h = RunHealth::default();
            mutate(&mut h);
            assert!(h.degraded(), "{h:?}");
            assert!(h.to_json().contains(r#""degraded":true"#));
            assert!(h.render().starts_with("health: DEGRADED"));
        }
    }

    #[test]
    fn ingest_degradation_marks_run_degraded() {
        let mut clean = RunHealth::default();
        clean.ingest = Some(fdx_data::IngestHealth::default());
        assert!(!clean.degraded(), "clean ingest keeps the run pristine");
        assert!(clean.to_json().contains(r#""ingest":{"kind":"ingest""#));

        let mut h = RunHealth::default();
        h.ingest = Some(fdx_data::IngestHealth {
            rows_quarantined: 3,
            policy: "skip".to_string(),
            ..fdx_data::IngestHealth::default()
        });
        assert!(h.degraded(), "quarantined rows degrade the run");
        assert!(h.to_json().contains(r#""rows_quarantined":3"#));
        assert!(h.render().contains("quarantined"), "{}", h.render());
    }

    #[test]
    fn rung_labels_and_indices_are_stable() {
        let rungs = [
            RecoveryRung::Glasso,
            RecoveryRung::RidgedRetry,
            RecoveryRung::DirectInversion,
            RecoveryRung::NeighborhoodSelection,
        ];
        for (i, r) in rungs.iter().enumerate() {
            assert_eq!(r.index() as usize, i + 1);
        }
        assert!(rungs.windows(2).all(|w| w[0] < w[1]), "ordered by severity");
        assert_eq!(
            format!("{}", RecoveryRung::RidgedRetry),
            "2/4 (ridged_retry)"
        );
    }

    #[test]
    fn clean_input_stays_on_rung_one() {
        let mut h = RunHealth::default();
        let (theta, warm) = estimate_precision(&spd3(), &FdxConfig::default(), &mut h).unwrap();
        assert_eq!(h.rung, RecoveryRung::Glasso);
        assert!(!h.degraded());
        let warm = warm.expect("converged glasso yields a warm iterate");
        assert_eq!(warm.theta[(0, 1)], theta[(0, 1)]);
        // Identical to the direct solve the ladder wraps.
        let direct = graphical_lasso(&spd3(), &GlassoConfig::default())
            .unwrap()
            .theta;
        assert_eq!(theta[(0, 1)], direct[(0, 1)]);
    }

    #[test]
    fn forced_non_convergence_descends_to_rung_two() {
        let mut h = RunHealth::default();
        let _f = faults::arm_times("glasso.force_no_converge", 1);
        let (theta, warm) = estimate_precision(&spd3(), &FdxConfig::default(), &mut h).unwrap();
        assert_eq!(h.rung, RecoveryRung::RidgedRetry);
        assert!(h.degraded());
        assert!(warm.is_some(), "rung 2 is still a glasso fixed point");
        assert!(theta[(0, 0)].is_finite());
        assert!(!h.recoveries.is_empty());
    }

    #[test]
    fn persistent_non_convergence_descends_to_rung_three() {
        let mut h = RunHealth::default();
        let _f = faults::arm("glasso.force_no_converge");
        let (theta, warm) = estimate_precision(&spd3(), &FdxConfig::default(), &mut h).unwrap();
        assert_eq!(h.rung, RecoveryRung::DirectInversion);
        assert!(!h.glasso_converged);
        assert!(warm.is_none(), "fallback rungs are not glasso fixed points");
        assert!(theta[(0, 0)].is_finite());
    }

    #[test]
    fn blocked_inversion_descends_to_rung_four() {
        let mut h = RunHealth::default();
        let _f1 = faults::arm("glasso.force_no_converge");
        let _f2 = faults::arm("inversion.force_fail");
        let (theta, _) = estimate_precision(&spd3(), &FdxConfig::default(), &mut h).unwrap();
        assert_eq!(h.rung, RecoveryRung::NeighborhoodSelection);
        // Surrogate Θ must be factorizable (diagonally dominant SPD).
        assert!(fdx_linalg::cholesky(&theta).is_ok());
    }

    #[test]
    fn surrogate_theta_is_spd_for_dense_support() {
        let k = 5;
        let mut adj = Matrix::zeros(k, k);
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    adj[(i, j)] = 1.0;
                }
            }
        }
        let theta = support_surrogate_theta(&adj);
        assert!(fdx_linalg::cholesky(&theta).is_ok());
        // Empty support degenerates to the identity.
        let id = support_surrogate_theta(&Matrix::zeros(3, 3));
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
    }

    #[test]
    fn ensure_finite_catches_nan_and_inf() {
        let mut m = spd3();
        assert!(ensure_finite("covariance", &m).is_ok());
        m[(1, 2)] = f64::NAN;
        assert!(matches!(
            ensure_finite("covariance", &m),
            Err(FdxError::NonFinite {
                stage: "covariance"
            })
        ));
        m[(1, 2)] = f64::INFINITY;
        assert!(ensure_finite("covariance", &m).is_err());
    }

    #[test]
    fn budget_clock_respects_skew_fault() {
        let span = fdx_obs::Span::enter("test.budget");
        let unlimited = BudgetClock::new(&span, None);
        assert!(unlimited.check("transform").is_ok());
        let tight = BudgetClock::new(&span, Some(10.0));
        assert!(tight.check("transform").is_ok(), "10s not yet consumed");
        let _f = faults::arm_value("clock.skew", 60.0);
        match tight.check("covariance") {
            Err(FdxError::BudgetExceeded {
                phase,
                elapsed_secs,
                budget_secs,
            }) => {
                assert_eq!(phase, "covariance");
                assert!(elapsed_secs >= 60.0);
                assert_eq!(budget_secs, 10.0);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }
}
