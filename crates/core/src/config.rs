use fdx_glasso::WarmStart;
use fdx_order::OrderingMethod;

/// How the pair transform treats null cells when testing `t_i[A] = t_j[A]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NullPolicy {
    /// A null never equals anything, including another null (default).
    ///
    /// Missing values are errors under the paper's noisy-channel model
    /// (§3.1), so agreement "because both cells are missing" would be
    /// spurious signal.
    NeverEqual,
    /// Two nulls compare equal (missingness itself carries signal).
    NullEqualsNull,
}

/// How tuple pairs are sampled for the transform (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairSampling {
    /// The paper's Algorithm 2: for every attribute, sort the (shuffled)
    /// dataset by that attribute and pair each row with its successor under
    /// a circular shift. Produces `n` pairs per attribute, `n·k` samples
    /// total, covering a wide range of attribute values.
    CircularShift,
    /// Uniformly random tuple pairs, `pairs_per_attr` per attribute. The
    /// ablation baseline for the circular-shift heuristic.
    UniformRandom {
        /// Number of sampled pairs contributed per attribute.
        pairs_per_attr: usize,
    },
}

/// Configuration of the pair transform.
#[derive(Debug, Clone)]
pub struct TransformConfig {
    /// Pair-sampling strategy.
    pub sampling: PairSampling,
    /// Null comparison policy.
    pub null_policy: NullPolicy,
    /// Seed for the row shuffle (and random pair sampling).
    pub seed: u64,
    /// Upper bound on pairs contributed per attribute under
    /// [`PairSampling::CircularShift`]; `None` keeps all `n`. Large inputs
    /// (millions of tuples) can be subsampled here, as §5.4 suggests.
    pub max_pairs_per_attr: Option<usize>,
    /// Fan out the per-attribute transform across threads.
    pub parallel: bool,
    /// Worker-thread count for the parallel transform. `None` resolves
    /// through `FDX_THREADS` → hardware parallelism
    /// (`fdx_par::resolve_threads`). Results are bit-identical at every
    /// thread count.
    pub threads: Option<usize>,
}

impl Default for TransformConfig {
    fn default() -> Self {
        TransformConfig {
            sampling: PairSampling::CircularShift,
            null_policy: NullPolicy::NeverEqual,
            seed: 0x5D_F0_0D,
            max_pairs_per_attr: None,
            parallel: true,
            threads: None,
        }
    }
}

/// Configuration of the full FDX pipeline.
#[derive(Debug, Clone)]
pub struct FdxConfig {
    /// Pair-transform settings.
    pub transform: TransformConfig,
    /// Graphical-lasso ℓ₁ penalty — the paper's "sparsity" hyper-parameter
    /// (Table 8 sweeps {0, .002, …, .010}; 0 is the default).
    pub sparsity: f64,
    /// Normalize the pair covariance to a correlation matrix before
    /// estimating `Θ`. Keeps the autoregression threshold scale-free across
    /// attributes with different agreement rates.
    pub use_correlation: bool,
    /// Magnitude threshold on entries of the autoregression matrix `B`:
    /// entries at or below it are treated as zero by Algorithm 3.
    pub threshold: f64,
    /// Shrinkage weight `α` applied to the covariance/correlation estimate,
    /// `S ← (1−α)·S + α·I`. Deterministic FD chains make the pair
    /// covariance nearly singular; shrinkage bounds `Θ` (and therefore the
    /// autoregression coefficients) without disturbing the support.
    pub shrinkage: f64,
    /// Relative pruning inside one `B` column: candidates weaker than
    /// `relative_keep × max |B[·, j]|` are dropped. Collinear determinants
    /// (attributes that are themselves determined by the true determinant)
    /// produce weak echo coefficients; this keeps determinant sets
    /// parsimonious, which is FDX's stated design goal.
    pub relative_keep: f64,
    /// Column-ordering heuristic for the UDUᵀ decomposition (Table 9).
    pub ordering: OrderingMethod,
    /// Support threshold when building the ordering graph from `Θ`.
    pub support_threshold: f64,
    /// Cap on determinant size; FDs whose candidate determinant exceeds the
    /// cap keep only the `max_lhs` strongest coefficients. The paper's
    /// synthetic FDs use |X| ≤ 3; parsimony is the whole point of FDX.
    pub max_lhs: usize,
    /// Validate, minimize, and reorient candidate FDs against the data
    /// using exact pair-agreement statistics (Equation 2). Disable to run
    /// the paper's raw Algorithm 3 output (the ablation).
    pub validate: bool,
    /// Minimum normalized agreement lift `(ρ − β)/(1 − β)` a candidate must
    /// reach during validation.
    pub min_lift: f64,
    /// Wall-clock budget for one `discover` run, in seconds. Checked at
    /// every phase boundary: when the elapsed time exceeds the budget the
    /// run stops with a typed [`crate::FdxError::BudgetExceeded`] instead of
    /// running arbitrarily long on pathological inputs. `None` (the default)
    /// disables the check.
    pub time_budget: Option<f64>,
    /// Worker-thread count for the parallel phases (pair transform,
    /// screened glasso components, neighborhood selection). `None` resolves
    /// through `FDX_THREADS` → hardware parallelism. Determinism contract:
    /// every thread count produces bit-identical results (`fdx-par`).
    pub threads: Option<usize>,
    /// Byte budget for the ingest working set when discovery loads a
    /// dataset from a path (`fdx_data::ingest`). Exceeding it engages the
    /// deterministic sampled-rows degradation rung (recorded in
    /// `RunHealth::ingest`; `--strict` fails such runs); when even
    /// sampling cannot fit, the run stops with a typed
    /// [`crate::FdxError::MemoryBudget`]. `None` (the default) disables
    /// the check.
    pub memory_budget: Option<u64>,
    /// Warm-start iterate `(Θ, W)` for the graphical-lasso solve, typically
    /// the converged iterate of an earlier run on the *same dataset* at a
    /// nearby λ (the serve-layer result cache wires this across a session's
    /// λ sweep). Determinism contract: the solve is a pure function of
    /// (input, config) — the *same* warm start always reproduces the same
    /// bits, and the serve layer derives the warm start deterministically
    /// from its persisted result cache so recovered sessions replay the
    /// exact choice. `None` (the default) starts cold.
    pub glasso_warm_start: Option<WarmStart>,
}

impl Default for FdxConfig {
    fn default() -> Self {
        FdxConfig {
            transform: TransformConfig::default(),
            sparsity: 0.0,
            use_correlation: true,
            threshold: 0.08,
            shrinkage: 0.10,
            relative_keep: 0.25,
            ordering: OrderingMethod::MinDegree,
            support_threshold: 0.05,
            max_lhs: 5,
            validate: true,
            min_lift: 0.35,
            time_budget: None,
            threads: None,
            memory_budget: None,
            glasso_warm_start: None,
        }
    }
}

impl FdxConfig {
    /// Convenience: default configuration with a fixed transform seed.
    pub fn with_seed(seed: u64) -> FdxConfig {
        FdxConfig {
            transform: TransformConfig {
                seed,
                ..TransformConfig::default()
            },
            ..FdxConfig::default()
        }
    }

    /// Convenience: set the sparsity (λ) knob.
    pub fn with_sparsity(mut self, sparsity: f64) -> FdxConfig {
        self.sparsity = sparsity;
        self
    }

    /// Convenience: set the autoregression threshold.
    pub fn with_threshold(mut self, threshold: f64) -> FdxConfig {
        self.threshold = threshold;
        self
    }

    /// Convenience: set the ordering method.
    pub fn with_ordering(mut self, ordering: OrderingMethod) -> FdxConfig {
        self.ordering = ordering;
        self
    }

    /// Convenience: set the per-run wall-clock budget in seconds.
    pub fn with_time_budget(mut self, secs: f64) -> FdxConfig {
        self.time_budget = Some(secs);
        self
    }

    /// Convenience: set the ingest memory budget in bytes (`0` is treated
    /// as "no budget").
    pub fn with_memory_budget(mut self, bytes: u64) -> FdxConfig {
        self.memory_budget = if bytes > 0 { Some(bytes) } else { None };
        self
    }

    /// Convenience: pin the worker-thread count for every parallel phase
    /// (`0` is treated as "use the default"). Any value yields bit-identical
    /// results; `1` runs fully inline for debugging or measurement.
    pub fn with_threads(mut self, threads: usize) -> FdxConfig {
        self.threads = if threads > 0 { Some(threads) } else { None };
        self.transform.threads = self.threads;
        self
    }

    /// Convenience: seed the glasso solve with a prior iterate (see
    /// [`FdxConfig::glasso_warm_start`]).
    pub fn with_glasso_warm_start(mut self, warm: WarmStart) -> FdxConfig {
        self.glasso_warm_start = Some(warm);
        self
    }

    /// Calibrates the validation lift to an (expected) cell-noise rate, the
    /// same courtesy the paper extends to PYRO and TANE ("we set their
    /// error rate hyper-parameter to the noise level for each data set",
    /// §5.3). An ε-noisy FD survives a pair test with probability
    /// `≈ (1−ε)²`; the margin below that keeps strong-but-not-functional
    /// correlations (ρ ≤ 0.85 in the §5.1 generator) out at low noise.
    pub fn for_noise_rate(mut self, noise: f64) -> FdxConfig {
        // A tuple-pair test of an FD touches two cells on each side; all
        // four must be clean for the agreement to carry signal, so the
        // observable lift of a true FD decays like (1−n)⁴.
        let survive = (1.0 - noise).powi(4);
        self.min_lift = (survive - 0.12).clamp(0.12, 0.85);
        let corr_survive = (1.0 - noise) * (1.0 - noise);
        self.threshold = (self.threshold * corr_survive).max(0.02);
        self.support_threshold = (self.support_threshold * corr_survive).max(0.01);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let cfg = FdxConfig::default();
        assert_eq!(cfg.sparsity, 0.0, "Table 8's default sparsity is 0");
        assert_eq!(cfg.ordering, OrderingMethod::MinDegree);
        assert_eq!(cfg.transform.sampling, PairSampling::CircularShift);
        assert_eq!(cfg.transform.null_policy, NullPolicy::NeverEqual);
    }

    #[test]
    fn builders_chain() {
        let cfg = FdxConfig::with_seed(7)
            .with_sparsity(0.004)
            .with_threshold(0.2)
            .with_ordering(OrderingMethod::Natural)
            .with_time_budget(30.0);
        assert_eq!(cfg.transform.seed, 7);
        assert_eq!(cfg.sparsity, 0.004);
        assert_eq!(cfg.threshold, 0.2);
        assert_eq!(cfg.ordering, OrderingMethod::Natural);
        assert_eq!(cfg.time_budget, Some(30.0));
        assert_eq!(
            FdxConfig::default().time_budget,
            None,
            "budget is opt-in: a default run must never be killed by a clock"
        );
    }

    #[test]
    fn memory_budget_builder() {
        let cfg = FdxConfig::default().with_memory_budget(1 << 20);
        assert_eq!(cfg.memory_budget, Some(1 << 20));
        let cfg = FdxConfig::default().with_memory_budget(0);
        assert_eq!(cfg.memory_budget, None, "0 disables the budget");
        assert_eq!(FdxConfig::default().memory_budget, None);
    }

    #[test]
    fn with_threads_propagates_to_transform() {
        let cfg = FdxConfig::default().with_threads(3);
        assert_eq!(cfg.threads, Some(3));
        assert_eq!(cfg.transform.threads, Some(3));
        let cfg = FdxConfig::default().with_threads(0);
        assert_eq!(cfg.threads, None, "0 falls back to the default");
        assert_eq!(FdxConfig::default().threads, None);
    }
}
