//! Statistical validation and refinement of candidate FDs.
//!
//! Algorithm 3 reads FDs off the autoregression matrix. Its residual error
//! modes are (a) *orientation*: along dependency chains and inside
//! multi-attribute groups the linear SEM cannot tell `X → Y` from its
//! reversal, so the factorization may emit a reversed star or cascade, and
//! (b) *echo determinants*: collinear attributes leak weak coefficients into
//! a column. Both are cheaply testable against the data itself using the
//! paper's own FD semantics (Equation 2): for a real `X → Y`,
//! `P(t_i[Y] = t_j[Y] | t_i[X] = t_j[X]) = 1 − ε`.
//!
//! The refinement pipeline of [`refine`]:
//!
//! 1. **Component repair** — candidate FDs whose own agreement lift is weak
//!    are grouped into connected attribute clusters, and each small cluster
//!    is re-decomposed by a greedy best-sink search: repeatedly pick the
//!    member that the rest of the cluster determines best (minimizing its
//!    determinant), until nothing validates. This recovers
//!    `{X₁..X_m} → Y` from a reversed cascade like `Y → X₁`,
//!    `{Y, X₁} → X₂`. Near-perfect candidates (true hubs such as a key
//!    determining many attributes) bypass the rewrite entirely.
//! 2. **Per-FD validation** — every FD is scored with the normalized
//!    agreement lift `L = (ρ − β)/(1 − β)` (`ρ` the conditional pair
//!    agreement, `β` the marginal), greedily minimized while the lift is
//!    preserved, reoriented if the reverse direction clearly dominates, and
//!    dropped if no orientation validates.

use fdx_data::{AttrId, Dataset, Fd, FdSet};
use fdx_stats::group_ids;

/// The exact pair-agreement statistics of a candidate FD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdScore {
    /// `ρ = P(Z_Y = 1 | Z_X = 1)` over all tuple pairs.
    pub conditional: f64,
    /// `β = P(Z_Y = 1)` over all tuple pairs.
    pub baseline: f64,
    /// Normalized lift `(ρ − β)/(1 − β)`, clamped to `[0, 1]`.
    pub lift: f64,
    /// Number of lhs-agreeing pairs the estimate rests on.
    pub support_pairs: u64,
}

/// Computes the exact pair-agreement score of `lhs → rhs` on `ds`.
///
/// Uses group counts: with lhs groups of sizes `g_i` refined by rhs into
/// `c_{i,y}`, the number of lhs-agreeing pairs is `Σ C(g_i, 2)` and the
/// number also agreeing on rhs is `Σ C(c_{i,y}, 2)` — no pair sampling, no
/// quadratic blowup.
pub fn score_fd(ds: &Dataset, lhs: &[AttrId], rhs: AttrId) -> FdScore {
    let n = ds.nrows() as u64;
    let gx = group_ids(ds, lhs);
    let mut joint: Vec<AttrId> = lhs.to_vec();
    joint.push(rhs);
    let gxy = group_ids(ds, &joint);
    let gy = group_ids(ds, &[rhs]);

    let pairs2 = |c: u64| c * c.saturating_sub(1) / 2;
    let pairs_x: u64 = gx.sizes().iter().map(|&c| pairs2(c as u64)).sum();
    let pairs_xy: u64 = gxy.sizes().iter().map(|&c| pairs2(c as u64)).sum();
    let pairs_y: u64 = gy.sizes().iter().map(|&c| pairs2(c as u64)).sum();
    let all_pairs = pairs2(n).max(1);

    let conditional = if pairs_x > 0 {
        pairs_xy as f64 / pairs_x as f64
    } else {
        0.0
    };
    let baseline = pairs_y as f64 / all_pairs as f64;
    let lift = if baseline < 1.0 {
        ((conditional - baseline) / (1.0 - baseline)).clamp(0.0, 1.0)
    } else {
        0.0
    };
    FdScore {
        conditional,
        baseline,
        lift,
        support_pairs: pairs_x,
    }
}

/// Minimum lhs-agreeing pairs for a score to be trusted; below this the
/// conditional estimate is mostly sampling noise (a near-key lhs).
const MIN_SUPPORT_PAIRS: u64 = 8;

/// Lift a removal may cost before it stops counting as "preserving" the
/// full determinant's explanatory power.
const MINIMIZE_SLACK: f64 = 0.05;

/// Margin by which the reverse orientation must beat the forward one before
/// a validated single-attribute FD is flipped.
const FLIP_MARGIN: f64 = 0.08;

/// Candidates scoring at least this well are never rewritten by the
/// component repair (true hubs and exact FDs).
const HUB_GUARD: f64 = 0.92;

/// Largest attribute cluster the component repair will re-decompose.
const MAX_COMPONENT: usize = 8;

/// Greedily removes determinant attributes while the lift stays within
/// [`MINIMIZE_SLACK`] of the full determinant's lift. Returns the minimized
/// determinant and its score.
fn minimize_lhs(
    ds: &Dataset,
    lhs: &[AttrId],
    rhs: AttrId,
    full: FdScore,
    min_lift: f64,
) -> (Vec<AttrId>, FdScore) {
    let mut lhs = lhs.to_vec();
    let mut current = full;
    while lhs.len() > 1 {
        let mut best: Option<(usize, FdScore)> = None;
        for i in 0..lhs.len() {
            let mut reduced = lhs.clone();
            reduced.remove(i);
            let s = score_fd(ds, &reduced, rhs);
            if best.as_ref().map_or(true, |(_, b)| s.lift > b.lift) {
                best = Some((i, s));
            }
        }
        match best {
            Some((i, s)) if s.lift >= full.lift - MINIMIZE_SLACK && s.lift >= min_lift => {
                lhs.remove(i);
                current = s;
            }
            _ => break,
        }
    }
    (lhs, current)
}

/// Validates, minimizes, and (where necessary) reorients candidate FDs.
/// See the module docs for the full pipeline.
pub fn refine(ds: &Dataset, candidates: &FdSet, min_lift: f64) -> FdSet {
    let repaired = component_repair(ds, candidates, min_lift);
    let mut out = FdSet::new();
    for fd in repaired.iter() {
        let rhs = fd.rhs();
        let full = score_fd(ds, fd.lhs(), rhs);
        if full.lift >= min_lift && full.support_pairs >= MIN_SUPPORT_PAIRS {
            let (lhs, current) = minimize_lhs(ds, fd.lhs(), rhs, full, min_lift);
            if lhs.len() == 1 {
                out.insert(orient(ds, lhs[0], rhs, current, min_lift));
            } else {
                out.insert(Fd::new(lhs, rhs));
            }
            continue;
        }
        // Full determinant failed: fall back to the strongest singleton in
        // either orientation.
        let mut best: Option<(Fd, f64)> = None;
        for &x in fd.lhs() {
            let fwd = score_fd(ds, &[x], rhs);
            if fwd.lift >= min_lift
                && fwd.support_pairs >= MIN_SUPPORT_PAIRS
                && best.as_ref().map_or(true, |&(_, l)| fwd.lift > l)
            {
                best = Some((Fd::new([x], rhs), fwd.lift));
            }
            let rev = score_fd(ds, &[rhs], x);
            if rev.lift >= min_lift
                && rev.support_pairs >= MIN_SUPPORT_PAIRS
                && best.as_ref().map_or(true, |&(_, l)| rev.lift > l)
            {
                best = Some((Fd::new([rhs], x), rev.lift));
            }
        }
        if let Some((fd, _)) = best {
            out.insert(fd);
        }
    }
    drop_inversion_artifacts(ds, &out).minimize()
}

/// Drops FDs that are inversion artifacts of other FDs in the set.
///
/// If `Y` is determined by `D → Y` elsewhere in the set, then an FD using
/// `Y` as a determinant can be rewritten with `D` substituted for `Y`. When
/// that substitution makes the FD *trivial* (its rhs appears in the expanded
/// determinant), the FD carried no information beyond the near-injectivity
/// of `Y` — e.g. `{A, Y} → B` alongside `{A, B, C} → Y` — and is removed.
/// Pure two-cycles (`X → Y` and `Y → X`, a bijection) are kept.
fn drop_inversion_artifacts(ds: &Dataset, fds: &FdSet) -> FdSet {
    use std::collections::BTreeMap;
    // Process the finest-domain rhs first: when two FDs mutually explain
    // each other, the "many small attributes determine one large one"
    // orientation is the generative one and must survive.
    let mut ordered: Vec<&Fd> = fds.iter().collect();
    ordered.sort_by_key(|fd| std::cmp::Reverse(ds.column(fd.rhs()).distinct_count()));
    let mut survivors: Vec<Fd> = Vec::new();
    for fd in ordered {
        let determiners: BTreeMap<AttrId, &Fd> = survivors.iter().map(|s| (s.rhs(), s)).collect();
        let mut expanded: Vec<AttrId> = Vec::new();
        for &x in fd.lhs() {
            match determiners.get(&x) {
                // Pure bijection pair: do not expand.
                Some(d) if d.lhs() == [fd.rhs()] => expanded.push(x),
                Some(d) => {
                    expanded.extend(d.lhs().iter().copied().filter(|&a| a != x));
                }
                None => expanded.push(x),
            }
        }
        if !expanded.contains(&fd.rhs()) {
            survivors.push(fd.clone());
        }
    }
    FdSet::from_fds(survivors)
}

/// Re-decomposes weakly-explained attribute clusters (see module docs).
fn component_repair(ds: &Dataset, fds: &FdSet, min_lift: f64) -> FdSet {
    let k = ds.ncols();
    let mut strong: Vec<Fd> = Vec::new();
    let mut weak: Vec<Fd> = Vec::new();
    for fd in fds.iter() {
        let s = score_fd(ds, fd.lhs(), fd.rhs());
        if s.lift >= HUB_GUARD {
            strong.push(fd.clone());
        } else {
            weak.push(fd.clone());
        }
    }
    if weak.is_empty() {
        return fds.clone();
    }

    // Union-find over attributes, joined by weak-FD participation.
    let mut parent: Vec<usize> = (0..k).collect();
    fn find(parent: &mut Vec<usize>, mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    for fd in &weak {
        let root = find(&mut parent, fd.rhs());
        for &x in fd.lhs() {
            let rx = find(&mut parent, x);
            parent[rx] = root;
        }
    }
    let mut components: std::collections::BTreeMap<usize, Vec<AttrId>> = Default::default();
    let mut touched = vec![false; k];
    for fd in &weak {
        touched[fd.rhs()] = true;
        for &x in fd.lhs() {
            touched[x] = true;
        }
    }
    for a in 0..k {
        if touched[a] {
            let root = find(&mut parent, a);
            components.entry(root).or_default().push(a);
        }
    }

    let mut out = FdSet::from_fds(strong);
    for comp in components.values() {
        if comp.len() < 2 || comp.len() > MAX_COMPONENT {
            // Oversized or trivial: keep the originals; the per-FD pass
            // will judge them individually.
            for fd in &weak {
                if comp.contains(&fd.rhs()) {
                    out.insert(fd.clone());
                }
            }
            continue;
        }
        // Greedy best-sink decomposition of the cluster.
        let mut unclaimed: Vec<AttrId> = comp.clone();
        while unclaimed.len() >= 2 {
            let mut round: Vec<(FdScore, AttrId, Vec<AttrId>)> = Vec::new();
            for &y in &unclaimed {
                // Determinants come from the *unclaimed* attributes only:
                // sinks are extracted in reverse topological order, so an
                // already-extracted sink (which is statistically near-
                // injective) can never masquerade as a determinant.
                let x_all: Vec<AttrId> = unclaimed.iter().copied().filter(|&a| a != y).collect();
                let full = score_fd(ds, &x_all, y);
                if full.lift < min_lift || full.support_pairs < MIN_SUPPORT_PAIRS {
                    continue;
                }
                let (lhs, s) = minimize_lhs(ds, &x_all, y, full, min_lift);
                round.push((s, y, lhs));
            }
            if round.is_empty() {
                break;
            }
            // Near-ties in lift resolve to the finest-domain sink: in a
            // multi-attribute FD the determined attribute's partition is the
            // product of the determinants', so it has the most distinct
            // values.
            let best_lift = round
                .iter()
                .map(|(s, ..)| s.lift)
                .fold(f64::NEG_INFINITY, f64::max);
            let (_, y, lhs) = round
                .into_iter()
                .filter(|(s, ..)| s.lift >= best_lift - 0.06)
                .max_by_key(|&(_, y, _)| ds.column(y).distinct_count())
                // fdx-allow: L001 the filter keeps the max-lift element, so the round is non-empty
                .expect("non-empty round");
            out.insert(Fd::new(lhs, y));
            unclaimed.retain(|&a| a != y);
        }
    }
    out
}

/// Chooses the orientation of a validated single-attribute dependency:
/// flips to `rhs → x` only when the reverse lift clearly dominates.
fn orient(ds: &Dataset, x: AttrId, rhs: AttrId, forward: FdScore, min_lift: f64) -> Fd {
    let rev = score_fd(ds, &[rhs], x);
    if rev.lift >= min_lift
        && rev.support_pairs >= MIN_SUPPORT_PAIRS
        && rev.lift > forward.lift + FLIP_MARGIN
    {
        Fd::new([rhs], x)
    } else {
        Fd::new([x], rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdx_data::Dataset;

    fn fd_dataset() -> Dataset {
        // zip -> city exactly; city does not determine zip.
        let mut rows = Vec::new();
        for z in 0..6 {
            for _ in 0..5 {
                rows.push([format!("z{z}"), format!("c{}", z / 3)]);
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["zip", "city"], &slices)
    }

    #[test]
    fn exact_fd_scores_full_lift() {
        let ds = fd_dataset();
        let s = score_fd(&ds, &[0], 1);
        assert!((s.conditional - 1.0).abs() < 1e-12);
        assert!((s.lift - 1.0).abs() < 1e-12);
        assert!(s.support_pairs >= MIN_SUPPORT_PAIRS);
    }

    #[test]
    fn reverse_direction_scores_low() {
        let ds = fd_dataset();
        let fwd = score_fd(&ds, &[0], 1);
        let rev = score_fd(&ds, &[1], 0);
        assert!(rev.lift < 0.5, "reverse lift = {}", rev.lift);
        assert!(fwd.lift > rev.lift);
    }

    #[test]
    fn refine_reorients_reversed_candidate() {
        let ds = fd_dataset();
        // Candidate points the wrong way; refine must flip it.
        let cands = FdSet::from_fds([Fd::new([1], 0)]);
        let refined = refine(&ds, &cands, 0.5);
        assert_eq!(refined.fds(), &[Fd::new([0], 1)]);
    }

    #[test]
    fn refine_minimizes_echo_determinants() {
        // noise is an echo: zip alone determines city.
        let mut rows = Vec::new();
        for z in 0..6 {
            for r in 0..5 {
                rows.push([
                    format!("z{z}"),
                    format!("c{}", z / 3),
                    format!("s{}", (z + r) % 3),
                ]);
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["zip", "city", "noise"], &slices);
        let cands = FdSet::from_fds([Fd::new([0, 2], 1)]);
        let refined = refine(&ds, &cands, 0.5);
        assert_eq!(refined.fds(), &[Fd::new([0], 1)]);
    }

    #[test]
    fn refine_drops_unsupported_candidates() {
        // Independent columns: the spurious FD must vanish in both
        // orientations.
        let mut rows = Vec::new();
        for i in 0..40 {
            rows.push([format!("a{}", i % 7), format!("b{}", (i * 13 + i / 7) % 6)]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let indep = Dataset::from_string_rows(&["a", "b"], &slices);
        let refined = refine(&indep, &FdSet::from_fds([Fd::new([0], 1)]), 0.5);
        assert!(refined.is_empty(), "{refined:?}");
    }

    #[test]
    fn multi_attribute_fd_validates_as_a_whole() {
        // y = f(a, b): neither singleton suffices.
        let mut rows = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                for _ in 0..4 {
                    rows.push([
                        format!("a{a}"),
                        format!("b{b}"),
                        format!("y{}", (a * 2 + b * 3) % 5),
                    ]);
                }
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["a", "b", "y"], &slices);
        let refined = refine(&ds, &FdSet::from_fds([Fd::new([0, 1], 2)]), 0.6);
        assert_eq!(refined.fds(), &[Fd::new([0, 1], 2)]);
    }

    #[test]
    fn score_handles_near_key_lhs() {
        // lhs almost unique: support too small to trust.
        let ds = Dataset::from_string_rows(
            &["k", "y"],
            &[&["a", "0"], &["b", "1"], &["c", "0"], &["d", "1"]],
        );
        let s = score_fd(&ds, &[0], 1);
        assert!(s.support_pairs < MIN_SUPPORT_PAIRS);
        let refined = refine(&ds, &FdSet::from_fds([Fd::new([0], 1)]), 0.3);
        assert!(refined.is_empty());
    }

    /// y = f(a, b, c) with large domains, candidates emitted as the reversed
    /// cascade the factorization produces.
    fn group_dataset() -> Dataset {
        let mut rows = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                for c in 0..5 {
                    for _ in 0..3 {
                        // Knuth-style scramble so collisions don't preserve
                        // any single coordinate.
                        let config: u64 = a * 25 + b * 5 + c;
                        let y = (config.wrapping_mul(2654435761) >> 5) % 100;
                        rows.push([
                            format!("a{a}"),
                            format!("b{b}"),
                            format!("c{c}"),
                            format!("y{y}"),
                        ]);
                    }
                }
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["a", "b", "c", "y"], &slices)
    }

    #[test]
    fn component_repair_recovers_reversed_star() {
        let ds = group_dataset();
        // Reversed star: y -> a, y -> b, y -> c (each individually weak).
        let cands = FdSet::from_fds([Fd::new([3], 0), Fd::new([3], 1), Fd::new([3], 2)]);
        let refined = refine(&ds, &cands, 0.7);
        assert_eq!(
            refined.fds(),
            &[Fd::new([0, 1, 2], 3)],
            "got {}",
            refined.render(ds.schema())
        );
    }

    #[test]
    fn component_repair_recovers_reversed_cascade() {
        let ds = group_dataset();
        // Reversed chain: y -> a, {y,a} -> b, {a,b} -> c.
        let cands = FdSet::from_fds([Fd::new([3], 0), Fd::new([3, 0], 1), Fd::new([0, 1], 2)]);
        let refined = refine(&ds, &cands, 0.7);
        assert_eq!(
            refined.fds(),
            &[Fd::new([0, 1, 2], 3)],
            "got {}",
            refined.render(ds.schema())
        );
    }

    #[test]
    fn component_repair_leaves_true_hubs_alone() {
        // A key determines three attributes exactly; forward lifts are 1.0
        // so the hub guard must keep the star as-is.
        let mut rows = Vec::new();
        for k in 0..12 {
            for _ in 0..4 {
                rows.push([
                    format!("k{k}"),
                    format!("p{}", k % 4),
                    format!("q{}", k % 3),
                    format!("r{}", (k / 2) % 3),
                ]);
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["key", "p", "q", "r"], &slices);
        let cands = FdSet::from_fds([Fd::new([0], 1), Fd::new([0], 2), Fd::new([0], 3)]);
        let refined = refine(&ds, &cands, 0.6);
        let edges = refined.edge_set();
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(0, 2)));
        assert!(edges.contains(&(0, 3)));
        assert!(!edges.iter().any(|&(_, y)| y == 0), "{edges:?}");
    }
}
