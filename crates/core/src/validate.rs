//! Statistical validation and refinement of candidate FDs.
//!
//! Algorithm 3 reads FDs off the autoregression matrix. Its residual error
//! modes are (a) *orientation*: along dependency chains and inside
//! multi-attribute groups the linear SEM cannot tell `X → Y` from its
//! reversal, so the factorization may emit a reversed star or cascade, and
//! (b) *echo determinants*: collinear attributes leak weak coefficients into
//! a column. Both are cheaply testable against the data itself using the
//! paper's own FD semantics (Equation 2): for a real `X → Y`,
//! `P(t_i[Y] = t_j[Y] | t_i[X] = t_j[X]) = 1 − ε`.
//!
//! The refinement pipeline of [`refine`]:
//!
//! 1. **Component repair** — candidate FDs whose own agreement lift is weak
//!    are grouped into connected attribute clusters, and each small cluster
//!    is re-decomposed by a greedy best-sink search: repeatedly pick the
//!    member that the rest of the cluster determines best (minimizing its
//!    determinant), until nothing validates. This recovers
//!    `{X₁..X_m} → Y` from a reversed cascade like `Y → X₁`,
//!    `{Y, X₁} → X₂`. Near-perfect candidates (true hubs such as a key
//!    determining many attributes) bypass the rewrite entirely.
//! 2. **Per-FD validation** — every FD is scored with the normalized
//!    agreement lift `L = (ρ − β)/(1 − β)` (`ρ` the conditional pair
//!    agreement, `β` the marginal), greedily minimized while the lift is
//!    preserved, reoriented if the reverse direction clearly dominates, and
//!    dropped if no orientation validates.
//!
//! Both stages funnel every score through a [`ScoreCtx`]: a partition cache
//! keyed by the *sorted* attribute set (larger partitions are derived from a
//! cached prefix with one [`fdx_stats::refine_groups`] pass instead of a
//! from-scratch hash of the joint key) plus a score memo, so the thousands
//! of overlapping `score_fd` calls issued by minimization and component
//! repair each hash the data at most once per distinct attribute set. All
//! scores are exact integer pair counts, so the cache changes nothing about
//! the output — see DESIGN.md §15 for the invariants — and the score rounds
//! can fan out over [`fdx_par::par_map_indexed`] with an index-ordered
//! reduction that keeps the refined FD set bit-identical at every thread
//! count.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use fdx_data::{AttrId, Dataset, Fd, FdSet};
use fdx_stats::{group_ids, refine_groups, GroupIds};

/// The exact pair-agreement statistics of a candidate FD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdScore {
    /// `ρ = P(Z_Y = 1 | Z_X = 1)` over all tuple pairs.
    pub conditional: f64,
    /// `β = P(Z_Y = 1)` over all tuple pairs.
    pub baseline: f64,
    /// Normalized lift `(ρ − β)/(1 − β)`, clamped to `[0, 1]`.
    pub lift: f64,
    /// Number of lhs-agreeing pairs the estimate rests on.
    pub support_pairs: u64,
}

/// Computes the exact pair-agreement score of `lhs → rhs` on `ds`.
///
/// Uses group counts: with lhs groups of sizes `g_i` refined by rhs into
/// `c_{i,y}`, the number of lhs-agreeing pairs is `Σ C(g_i, 2)` and the
/// number also agreeing on rhs is `Σ C(c_{i,y}, 2)` — no pair sampling, no
/// quadratic blowup.
pub fn score_fd(ds: &Dataset, lhs: &[AttrId], rhs: AttrId) -> FdScore {
    let gx = group_ids(ds, lhs);
    let mut joint: Vec<AttrId> = lhs.to_vec();
    joint.push(rhs);
    let gxy = group_ids(ds, &joint);
    let gy = group_ids(ds, &[rhs]);
    score_from_pair_counts(
        ds.nrows() as u64,
        gx.pair_count(),
        gxy.pair_count(),
        gy.pair_count(),
    )
}

/// Builds an [`FdScore`] from exact within-group pair counts.
///
/// Shared by the uncached [`score_fd`] and the partition-cached
/// [`ScoreCtx::score`]: both produce the same integer pair counts, and this
/// is the single place those integers meet floating point, so the two paths
/// are bit-identical by construction.
fn score_from_pair_counts(n: u64, pairs_x: u64, pairs_xy: u64, pairs_y: u64) -> FdScore {
    let pairs2 = |c: u64| c * c.saturating_sub(1) / 2;
    let all_pairs = pairs2(n).max(1);
    let conditional = if pairs_x > 0 {
        pairs_xy as f64 / pairs_x as f64
    } else {
        0.0
    };
    let baseline = pairs_y as f64 / all_pairs as f64;
    let lift = if baseline < 1.0 {
        ((conditional - baseline) / (1.0 - baseline)).clamp(0.0, 1.0)
    } else {
        0.0
    };
    FdScore {
        conditional,
        baseline,
        lift,
        support_pairs: pairs_x,
    }
}

/// Options steering [`refine_with_options`]; [`refine`] uses the defaults.
#[derive(Debug, Clone, Copy)]
pub struct RefineOptions {
    /// Thread budget for the score rounds (`None` = process default, see
    /// `fdx_par::resolve_threads`). The refined FD set is bit-identical at
    /// every thread count.
    pub threads: Option<usize>,
    /// Whether to reuse partitions across scores. Scores are exact integer
    /// pair counts either way; disabling the cache only costs time. Exposed
    /// so tests and benchmarks can pin the equivalence.
    pub partition_cache: bool,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            threads: None,
            partition_cache: true,
        }
    }
}

/// Shared scoring state for one [`refine`] run.
///
/// Two memo layers sit in front of the partition math:
///
/// * **Partition cache** — `sorted attribute set → GroupIds`. A multi-
///   attribute partition is derived by refining the cached partition of its
///   sorted prefix with the last attribute's code column
///   ([`refine_groups`]), which is a dense counting pass instead of a
///   `HashMap<Vec<u32>, _>` build over the joint key. Sorting the key is
///   sound because a partition (and its first-appearance numbering) is
///   invariant under attribute order.
/// * **Score memo** — `(sorted lhs, rhs) → FdScore`. Minimization revisits
///   the same subsets along different removal paths; those re-scores are a
///   single hash lookup.
///
/// Both maps are insert-only and every insert for a given key computes the
/// identical value, so concurrent score rounds may race on insertion
/// without affecting any result.
struct ScoreCtx<'a> {
    ds: &'a Dataset,
    /// Resolved thread budget for the outer score rounds.
    threads: usize,
    cache_enabled: bool,
    partitions: Mutex<HashMap<Vec<AttrId>, Arc<GroupIds>>>,
    scores: Mutex<HashMap<(Vec<AttrId>, AttrId), FdScore>>,
}

/// Locks a cache mutex, recovering the guard if a worker panicked while
/// holding it (the maps are insert-only, so they are never left in a
/// half-updated state).
fn lock_cache<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<'a> ScoreCtx<'a> {
    fn new(ds: &'a Dataset, threads: usize, cache_enabled: bool) -> Self {
        ScoreCtx {
            ds,
            threads,
            cache_enabled,
            partitions: Mutex::new(HashMap::new()),
            scores: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the row partition of the sorted attribute set `attrs`,
    /// deriving it from the cached partition of `attrs[..len-1]` where
    /// possible.
    fn partition(&self, attrs: &[AttrId]) -> Arc<GroupIds> {
        debug_assert!(attrs.windows(2).all(|w| w[0] <= w[1]));
        if let Some(p) = lock_cache(&self.partitions).get(attrs) {
            fdx_obs::counter_add("fdx.validate.partition_hits", 1);
            return Arc::clone(p);
        }
        fdx_obs::counter_add("fdx.validate.partition_misses", 1);
        let part = if attrs.len() <= 1 {
            Arc::new(group_ids(self.ds, attrs))
        } else {
            let last = attrs[attrs.len() - 1];
            let base = self.partition(&attrs[..attrs.len() - 1]);
            Arc::new(refine_groups(&base, self.ds.column(last).codes()))
        };
        // Another round may have inserted the same key meanwhile; both
        // computed the identical partition, so keep whichever landed first.
        Arc::clone(
            lock_cache(&self.partitions)
                .entry(attrs.to_vec())
                .or_insert(part),
        )
    }

    /// Cached equivalent of [`score_fd`]; bit-identical to it by
    /// construction (both call [`score_from_pair_counts`] on the same
    /// integer pair counts).
    fn score(&self, lhs: &[AttrId], rhs: AttrId) -> FdScore {
        fdx_obs::counter_add("fdx.validate.score_calls", 1);
        if !self.cache_enabled {
            return score_fd(self.ds, lhs, rhs);
        }
        let mut key = lhs.to_vec();
        key.sort_unstable();
        let memo_key = (key, rhs);
        if let Some(&s) = lock_cache(&self.scores).get(&memo_key) {
            fdx_obs::counter_add("fdx.validate.score_memo_hits", 1);
            return s;
        }
        let gx = self.partition(&memo_key.0);
        let mut joint = memo_key.0.clone();
        match joint.binary_search(&rhs) {
            // rhs already in the lhs: the joint partition is the lhs
            // partition, matching `group_ids` over the duplicated set.
            Ok(_) => {}
            Err(pos) => joint.insert(pos, rhs),
        }
        let gxy = self.partition(&joint);
        let gy = self.partition(&[rhs]);
        let s = score_from_pair_counts(
            self.ds.nrows() as u64,
            gx.pair_count(),
            gxy.pair_count(),
            gy.pair_count(),
        );
        lock_cache(&self.scores).insert(memo_key, s);
        s
    }
}

/// Minimum lhs-agreeing pairs for a score to be trusted; below this the
/// conditional estimate is mostly sampling noise (a near-key lhs).
const MIN_SUPPORT_PAIRS: u64 = 8;

/// Lift a removal may cost before it stops counting as "preserving" the
/// full determinant's explanatory power.
const MINIMIZE_SLACK: f64 = 0.05;

/// Margin by which the reverse orientation must beat the forward one before
/// a validated single-attribute FD is flipped.
const FLIP_MARGIN: f64 = 0.08;

/// Candidates scoring at least this well are never rewritten by the
/// component repair (true hubs and exact FDs).
const HUB_GUARD: f64 = 0.92;

/// Largest attribute cluster the component repair will re-decompose.
const MAX_COMPONENT: usize = 8;

/// Copies `lhs` minus the attribute at `i` into `scratch`.
fn leave_one_out(lhs: &[AttrId], i: usize, scratch: &mut Vec<AttrId>) {
    scratch.clear();
    scratch.extend_from_slice(&lhs[..i]);
    scratch.extend_from_slice(&lhs[i + 1..]);
}

/// Greedily removes determinant attributes while the lift stays within
/// [`MINIMIZE_SLACK`] of the full determinant's lift. Returns the minimized
/// determinant and its score.
///
/// Each round scores the `|lhs|` leave-one-out subsets — on up to `threads`
/// threads when the round is wide enough — then picks the best candidate by
/// an index-ordered scan, so the removal sequence is the one the serial
/// loop would take at any thread count. Subsets revisited along different
/// removal paths hit the [`ScoreCtx`] memo instead of re-hashing the data.
fn minimize_lhs(
    ctx: &ScoreCtx,
    lhs: &[AttrId],
    rhs: AttrId,
    full: FdScore,
    min_lift: f64,
    threads: usize,
) -> (Vec<AttrId>, FdScore) {
    let mut lhs = lhs.to_vec();
    let mut current = full;
    let mut scratch: Vec<AttrId> = Vec::with_capacity(lhs.len());
    while lhs.len() > 1 {
        let scored: Vec<FdScore> = if threads > 1 && lhs.len() > 2 {
            let indices: Vec<usize> = (0..lhs.len()).collect();
            fdx_par::par_map_indexed(&indices, threads, |_, &i| {
                let mut reduced = Vec::with_capacity(lhs.len() - 1);
                leave_one_out(&lhs, i, &mut reduced);
                ctx.score(&reduced, rhs)
            })
        } else {
            (0..lhs.len())
                .map(|i| {
                    leave_one_out(&lhs, i, &mut scratch);
                    ctx.score(&scratch, rhs)
                })
                .collect()
        };
        let mut best: Option<(usize, FdScore)> = None;
        for (i, &s) in scored.iter().enumerate() {
            if best.as_ref().map_or(true, |(_, b)| s.lift > b.lift) {
                best = Some((i, s));
            }
        }
        match best {
            Some((i, s)) if s.lift >= full.lift - MINIMIZE_SLACK && s.lift >= min_lift => {
                lhs.remove(i);
                current = s;
            }
            _ => break,
        }
    }
    (lhs, current)
}

/// Validates, minimizes, and (where necessary) reorients candidate FDs.
/// See the module docs for the full pipeline.
pub fn refine(ds: &Dataset, candidates: &FdSet, min_lift: f64) -> FdSet {
    refine_with_options(ds, candidates, min_lift, RefineOptions::default())
}

/// [`refine`] with an explicit thread budget and cache toggle.
///
/// The refined FD set is bit-identical across every combination of
/// `threads` and `partition_cache`: scores are exact integer pair counts,
/// parallel score rounds reduce in index order, and tie-breaks are
/// index-ordered scans of those reductions.
pub fn refine_with_options(
    ds: &Dataset,
    candidates: &FdSet,
    min_lift: f64,
    opts: RefineOptions,
) -> FdSet {
    let ctx = ScoreCtx::new(
        ds,
        fdx_par::resolve_threads(opts.threads),
        opts.partition_cache,
    );
    let repaired = {
        let span = fdx_obs::Span::enter("fdx.validation.repair");
        let repaired = component_repair(&ctx, candidates, min_lift);
        drop(span);
        repaired
    };
    let span = fdx_obs::Span::enter("fdx.validation.scoring");
    let mut out = FdSet::new();
    for fd in repaired.iter() {
        let rhs = fd.rhs();
        let full = ctx.score(fd.lhs(), rhs);
        if full.lift >= min_lift && full.support_pairs >= MIN_SUPPORT_PAIRS {
            let (lhs, current) = minimize_lhs(&ctx, fd.lhs(), rhs, full, min_lift, ctx.threads);
            if lhs.len() == 1 {
                out.insert(orient(&ctx, lhs[0], rhs, current, min_lift));
            } else {
                out.insert(Fd::new(lhs, rhs));
            }
            continue;
        }
        // Full determinant failed: fall back to the strongest singleton in
        // either orientation.
        let mut best: Option<(Fd, f64)> = None;
        for &x in fd.lhs() {
            let fwd = ctx.score(&[x], rhs);
            if fwd.lift >= min_lift
                && fwd.support_pairs >= MIN_SUPPORT_PAIRS
                && best.as_ref().map_or(true, |&(_, l)| fwd.lift > l)
            {
                best = Some((Fd::new([x], rhs), fwd.lift));
            }
            let rev = ctx.score(&[rhs], x);
            if rev.lift >= min_lift
                && rev.support_pairs >= MIN_SUPPORT_PAIRS
                && best.as_ref().map_or(true, |&(_, l)| rev.lift > l)
            {
                best = Some((Fd::new([rhs], x), rev.lift));
            }
        }
        if let Some((fd, _)) = best {
            out.insert(fd);
        }
    }
    let refined = drop_inversion_artifacts(ds, &out).minimize();
    drop(span);
    refined
}

/// Drops FDs that are inversion artifacts of other FDs in the set.
///
/// If `Y` is determined by `D → Y` elsewhere in the set, then an FD using
/// `Y` as a determinant can be rewritten with `D` substituted for `Y`. When
/// that substitution makes the FD *trivial* (its rhs appears in the expanded
/// determinant), the FD carried no information beyond the near-injectivity
/// of `Y` — e.g. `{A, Y} → B` alongside `{A, B, C} → Y` — and is removed.
/// Pure two-cycles (`X → Y` and `Y → X`, a bijection) are kept.
fn drop_inversion_artifacts(ds: &Dataset, fds: &FdSet) -> FdSet {
    use std::collections::BTreeMap;
    // Process the finest-domain rhs first: when two FDs mutually explain
    // each other, the "many small attributes determine one large one"
    // orientation is the generative one and must survive.
    let mut ordered: Vec<&Fd> = fds.iter().collect();
    ordered.sort_by_key(|fd| std::cmp::Reverse(ds.column(fd.rhs()).distinct_count()));
    let mut survivors: Vec<Fd> = Vec::new();
    for fd in ordered {
        let determiners: BTreeMap<AttrId, &Fd> = survivors.iter().map(|s| (s.rhs(), s)).collect();
        let mut expanded: Vec<AttrId> = Vec::new();
        for &x in fd.lhs() {
            match determiners.get(&x) {
                // Pure bijection pair: do not expand.
                Some(d) if d.lhs() == [fd.rhs()] => expanded.push(x),
                Some(d) => {
                    expanded.extend(d.lhs().iter().copied().filter(|&a| a != x));
                }
                None => expanded.push(x),
            }
        }
        if !expanded.contains(&fd.rhs()) {
            survivors.push(fd.clone());
        }
    }
    FdSet::from_fds(survivors)
}

/// Re-decomposes weakly-explained attribute clusters (see module docs).
fn component_repair(ctx: &ScoreCtx, fds: &FdSet, min_lift: f64) -> FdSet {
    let ds = ctx.ds;
    let k = ds.ncols();
    let all: Vec<&Fd> = fds.iter().collect();
    let lifts = fdx_par::par_map_indexed(&all, ctx.threads, |_, fd| {
        ctx.score(fd.lhs(), fd.rhs()).lift
    });
    let mut strong: Vec<Fd> = Vec::new();
    let mut weak: Vec<Fd> = Vec::new();
    for (fd, &lift) in all.iter().zip(&lifts) {
        if lift >= HUB_GUARD {
            strong.push((*fd).clone());
        } else {
            weak.push((*fd).clone());
        }
    }
    if weak.is_empty() {
        return fds.clone();
    }

    // Union-find over attributes, joined by weak-FD participation.
    let mut parent: Vec<usize> = (0..k).collect();
    fn find(parent: &mut Vec<usize>, mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    for fd in &weak {
        let root = find(&mut parent, fd.rhs());
        for &x in fd.lhs() {
            let rx = find(&mut parent, x);
            parent[rx] = root;
        }
    }
    let mut components: std::collections::BTreeMap<usize, Vec<AttrId>> = Default::default();
    let mut touched = vec![false; k];
    for fd in &weak {
        touched[fd.rhs()] = true;
        for &x in fd.lhs() {
            touched[x] = true;
        }
    }
    for a in 0..k {
        if touched[a] {
            let root = find(&mut parent, a);
            components.entry(root).or_default().push(a);
        }
    }

    let mut out = FdSet::from_fds(strong);
    for comp in components.values() {
        if comp.len() < 2 || comp.len() > MAX_COMPONENT {
            // Oversized or trivial: keep the originals; the per-FD pass
            // will judge them individually.
            for fd in &weak {
                if comp.contains(&fd.rhs()) {
                    out.insert(fd.clone());
                }
            }
            continue;
        }
        // Greedy best-sink decomposition of the cluster.
        let mut unclaimed: Vec<AttrId> = comp.clone();
        while unclaimed.len() >= 2 {
            fdx_obs::counter_add("fdx.validate.repair_rounds", 1);
            // One candidate sink per unclaimed attribute, scored and
            // minimized in parallel; flattening the index-ordered results
            // reproduces the serial push order exactly. Each worker
            // minimizes serially (threads = 1) so the round is the only
            // layer that spawns.
            let round: Vec<(FdScore, AttrId, Vec<AttrId>)> =
                fdx_par::par_map_indexed(&unclaimed, ctx.threads, |_, &y| {
                    // Determinants come from the *unclaimed* attributes
                    // only: sinks are extracted in reverse topological
                    // order, so an already-extracted sink (which is
                    // statistically near-injective) can never masquerade
                    // as a determinant.
                    let x_all: Vec<AttrId> =
                        unclaimed.iter().copied().filter(|&a| a != y).collect();
                    let full = ctx.score(&x_all, y);
                    if full.lift < min_lift || full.support_pairs < MIN_SUPPORT_PAIRS {
                        return None;
                    }
                    let (lhs, s) = minimize_lhs(ctx, &x_all, y, full, min_lift, 1);
                    Some((s, y, lhs))
                })
                .into_iter()
                .flatten()
                .collect();
            if round.is_empty() {
                break;
            }
            // Near-ties in lift resolve to the finest-domain sink: in a
            // multi-attribute FD the determined attribute's partition is the
            // product of the determinants', so it has the most distinct
            // values.
            let best_lift = round
                .iter()
                .map(|(s, ..)| s.lift)
                .fold(f64::NEG_INFINITY, f64::max);
            let (_, y, lhs) = round
                .into_iter()
                .filter(|(s, ..)| s.lift >= best_lift - 0.06)
                .max_by_key(|&(_, y, _)| ds.column(y).distinct_count())
                // fdx-allow: L001 the filter keeps the max-lift element, so the round is non-empty
                .expect("non-empty round");
            out.insert(Fd::new(lhs, y));
            unclaimed.retain(|&a| a != y);
        }
    }
    out
}

/// Chooses the orientation of a validated single-attribute dependency:
/// flips to `rhs → x` only when the reverse lift clearly dominates.
fn orient(ctx: &ScoreCtx, x: AttrId, rhs: AttrId, forward: FdScore, min_lift: f64) -> Fd {
    let rev = ctx.score(&[rhs], x);
    if rev.lift >= min_lift
        && rev.support_pairs >= MIN_SUPPORT_PAIRS
        && rev.lift > forward.lift + FLIP_MARGIN
    {
        Fd::new([rhs], x)
    } else {
        Fd::new([x], rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdx_data::Dataset;

    fn fd_dataset() -> Dataset {
        // zip -> city exactly; city does not determine zip.
        let mut rows = Vec::new();
        for z in 0..6 {
            for _ in 0..5 {
                rows.push([format!("z{z}"), format!("c{}", z / 3)]);
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["zip", "city"], &slices)
    }

    #[test]
    fn exact_fd_scores_full_lift() {
        let ds = fd_dataset();
        let s = score_fd(&ds, &[0], 1);
        assert!((s.conditional - 1.0).abs() < 1e-12);
        assert!((s.lift - 1.0).abs() < 1e-12);
        assert!(s.support_pairs >= MIN_SUPPORT_PAIRS);
    }

    #[test]
    fn reverse_direction_scores_low() {
        let ds = fd_dataset();
        let fwd = score_fd(&ds, &[0], 1);
        let rev = score_fd(&ds, &[1], 0);
        assert!(rev.lift < 0.5, "reverse lift = {}", rev.lift);
        assert!(fwd.lift > rev.lift);
    }

    #[test]
    fn refine_reorients_reversed_candidate() {
        let ds = fd_dataset();
        // Candidate points the wrong way; refine must flip it.
        let cands = FdSet::from_fds([Fd::new([1], 0)]);
        let refined = refine(&ds, &cands, 0.5);
        assert_eq!(refined.fds(), &[Fd::new([0], 1)]);
    }

    #[test]
    fn refine_minimizes_echo_determinants() {
        // noise is an echo: zip alone determines city.
        let mut rows = Vec::new();
        for z in 0..6 {
            for r in 0..5 {
                rows.push([
                    format!("z{z}"),
                    format!("c{}", z / 3),
                    format!("s{}", (z + r) % 3),
                ]);
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["zip", "city", "noise"], &slices);
        let cands = FdSet::from_fds([Fd::new([0, 2], 1)]);
        let refined = refine(&ds, &cands, 0.5);
        assert_eq!(refined.fds(), &[Fd::new([0], 1)]);
    }

    #[test]
    fn refine_drops_unsupported_candidates() {
        // Independent columns: the spurious FD must vanish in both
        // orientations.
        let mut rows = Vec::new();
        for i in 0..40 {
            rows.push([format!("a{}", i % 7), format!("b{}", (i * 13 + i / 7) % 6)]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let indep = Dataset::from_string_rows(&["a", "b"], &slices);
        let refined = refine(&indep, &FdSet::from_fds([Fd::new([0], 1)]), 0.5);
        assert!(refined.is_empty(), "{refined:?}");
    }

    #[test]
    fn multi_attribute_fd_validates_as_a_whole() {
        // y = f(a, b): neither singleton suffices.
        let mut rows = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                for _ in 0..4 {
                    rows.push([
                        format!("a{a}"),
                        format!("b{b}"),
                        format!("y{}", (a * 2 + b * 3) % 5),
                    ]);
                }
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["a", "b", "y"], &slices);
        let refined = refine(&ds, &FdSet::from_fds([Fd::new([0, 1], 2)]), 0.6);
        assert_eq!(refined.fds(), &[Fd::new([0, 1], 2)]);
    }

    #[test]
    fn score_handles_near_key_lhs() {
        // lhs almost unique: support too small to trust.
        let ds = Dataset::from_string_rows(
            &["k", "y"],
            &[&["a", "0"], &["b", "1"], &["c", "0"], &["d", "1"]],
        );
        let s = score_fd(&ds, &[0], 1);
        assert!(s.support_pairs < MIN_SUPPORT_PAIRS);
        let refined = refine(&ds, &FdSet::from_fds([Fd::new([0], 1)]), 0.3);
        assert!(refined.is_empty());
    }

    /// y = f(a, b, c) with large domains, candidates emitted as the reversed
    /// cascade the factorization produces.
    fn group_dataset() -> Dataset {
        let mut rows = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                for c in 0..5 {
                    for _ in 0..3 {
                        // Knuth-style scramble so collisions don't preserve
                        // any single coordinate.
                        let config: u64 = a * 25 + b * 5 + c;
                        let y = (config.wrapping_mul(2654435761) >> 5) % 100;
                        rows.push([
                            format!("a{a}"),
                            format!("b{b}"),
                            format!("c{c}"),
                            format!("y{y}"),
                        ]);
                    }
                }
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["a", "b", "c", "y"], &slices)
    }

    #[test]
    fn component_repair_recovers_reversed_star() {
        let ds = group_dataset();
        // Reversed star: y -> a, y -> b, y -> c (each individually weak).
        let cands = FdSet::from_fds([Fd::new([3], 0), Fd::new([3], 1), Fd::new([3], 2)]);
        let refined = refine(&ds, &cands, 0.7);
        assert_eq!(
            refined.fds(),
            &[Fd::new([0, 1, 2], 3)],
            "got {}",
            refined.render(ds.schema())
        );
    }

    #[test]
    fn component_repair_recovers_reversed_cascade() {
        let ds = group_dataset();
        // Reversed chain: y -> a, {y,a} -> b, {a,b} -> c.
        let cands = FdSet::from_fds([Fd::new([3], 0), Fd::new([3, 0], 1), Fd::new([0, 1], 2)]);
        let refined = refine(&ds, &cands, 0.7);
        assert_eq!(
            refined.fds(),
            &[Fd::new([0, 1, 2], 3)],
            "got {}",
            refined.render(ds.schema())
        );
    }

    #[test]
    fn cached_score_matches_uncached_exactly() {
        let ds = group_dataset();
        let ctx = ScoreCtx::new(&ds, 1, true);
        let queries: Vec<(Vec<AttrId>, AttrId)> = vec![
            (vec![0], 3),
            (vec![0, 1], 3),
            (vec![0, 1, 2], 3),
            (vec![2, 0, 1], 3), // permuted lhs
            (vec![3], 0),
            (vec![1, 3], 2),
            (vec![3, 1], 2), // permuted again: must hit the memo
            (vec![0, 3], 3), // rhs inside the lhs
        ];
        for (lhs, rhs) in &queries {
            assert_eq!(
                ctx.score(lhs, *rhs),
                score_fd(&ds, lhs, *rhs),
                "{lhs:?} -> {rhs}"
            );
        }
        // Second pass: every answer now comes from the memo, still exact.
        for (lhs, rhs) in &queries {
            assert_eq!(ctx.score(lhs, *rhs), score_fd(&ds, lhs, *rhs));
        }
    }

    #[test]
    fn refine_is_identical_across_cache_and_threads() {
        let ds = group_dataset();
        let cands = FdSet::from_fds([Fd::new([3], 0), Fd::new([3, 0], 1), Fd::new([0, 1], 2)]);
        let baseline = refine_with_options(
            &ds,
            &cands,
            0.7,
            RefineOptions {
                threads: Some(1),
                partition_cache: false,
            },
        );
        for threads in [1, 2, 4] {
            for partition_cache in [false, true] {
                let got = refine_with_options(
                    &ds,
                    &cands,
                    0.7,
                    RefineOptions {
                        threads: Some(threads),
                        partition_cache,
                    },
                );
                assert_eq!(
                    got.fds(),
                    baseline.fds(),
                    "threads={threads} cache={partition_cache}"
                );
            }
        }
    }

    #[test]
    fn component_repair_leaves_true_hubs_alone() {
        // A key determines three attributes exactly; forward lifts are 1.0
        // so the hub guard must keep the star as-is.
        let mut rows = Vec::new();
        for k in 0..12 {
            for _ in 0..4 {
                rows.push([
                    format!("k{k}"),
                    format!("p{}", k % 4),
                    format!("q{}", k % 3),
                    format!("r{}", (k / 2) % 3),
                ]);
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["key", "p", "q", "r"], &slices);
        let cands = FdSet::from_fds([Fd::new([0], 1), Fd::new([0], 2), Fd::new([0], 3)]);
        let refined = refine(&ds, &cands, 0.6);
        let edges = refined.edge_set();
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(0, 2)));
        assert!(edges.contains(&(0, 3)));
        assert!(!edges.iter().any(|&(_, y)| y == 0), "{edges:?}");
    }
}
