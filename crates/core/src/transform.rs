use fdx_data::{Dataset, NULL_CODE};
use fdx_linalg::{BitMatrix, Matrix};
use fdx_stats::{pack_adjacent_agreement, pack_pair_agreement, stable_sort_by_codes};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::config::{NullPolicy, PairSampling, TransformConfig};

/// Sufficient statistics of the pair-difference sample (Algorithm 2's `D_t`)
/// without materializing the `n·k × k` binary matrix.
///
/// Each transform sample is a binary vector `z` with
/// `z[a] = 1(t_i[a] = t_j[a])` for a sampled tuple pair `(t_i, t_j)`. For
/// covariance estimation only two aggregates are needed:
///
/// * `co_counts[a][b] = Σ z[a]·z[b]` — co-agreement counts, and
/// * `ones[a] = Σ z[a]` — per-attribute agreement counts,
///
/// which this type accumulates from bit-packed per-attribute blocks (64
/// samples per word, combined with `AND` + `popcount`). This keeps the
/// transform linear in `n·k` with a tiny constant, the property behind the
/// paper's column-scalability result (Figure 6).
#[derive(Debug, Clone)]
pub struct PairStats {
    k: usize,
    /// Upper-triangular (including diagonal) co-agreement counts, row-major.
    co_counts: Vec<u64>,
    ones: Vec<u64>,
    /// Per-block agreement counts: `block_ones[blk * k + a]` counts
    /// agreements on attribute `a` among the pairs of block `blk` (the pairs
    /// produced while sorted by attribute `blk`).
    block_ones: Vec<u64>,
    /// Pairs contributed by each block.
    block_sizes: Vec<usize>,
    n_samples: usize,
}

impl PairStats {
    fn zeros(k: usize) -> PairStats {
        PairStats {
            k,
            co_counts: vec![0; k * k],
            ones: vec![0; k],
            block_ones: vec![0; k * k],
            block_sizes: vec![0; k],
            n_samples: 0,
        }
    }

    fn merge(&mut self, other: &PairStats) {
        debug_assert_eq!(self.k, other.k);
        for (a, b) in self.co_counts.iter_mut().zip(&other.co_counts) {
            *a += b;
        }
        for (a, b) in self.ones.iter_mut().zip(&other.ones) {
            *a += b;
        }
        for (a, b) in self.block_ones.iter_mut().zip(&other.block_ones) {
            *a += b;
        }
        for (a, b) in self.block_sizes.iter_mut().zip(&other.block_sizes) {
            *a += b;
        }
        self.n_samples += other.n_samples;
    }

    /// Number of attributes `k`.
    pub fn num_attributes(&self) -> usize {
        self.k
    }

    /// Number of transform samples accumulated (`n·k` under circular shift).
    pub fn num_samples(&self) -> usize {
        self.n_samples
    }

    /// Per-attribute empirical agreement rate `P(z[a] = 1)`.
    pub fn agreement_rates(&self) -> Vec<f64> {
        let n = self.n_samples.max(1) as f64;
        self.ones.iter().map(|&o| o as f64 / n).collect()
    }

    /// Pooled **within-block** covariance of the transform samples — the
    /// `S` handed to the graphical lasso.
    ///
    /// Algorithm 2 produces one block of pairs per sort attribute, and the
    /// agreement rate of the sort attribute is systematically higher inside
    /// its own block. Pooling raw samples would therefore manufacture
    /// negative cross-attribute covariance out of pure block-mean shifts
    /// (severely so for small `k`). Centering each block on its own mean
    /// removes the stratification artifact while preserving the dependency
    /// signal FDs create *within* every block:
    ///
    /// ```text
    /// S = (1/N) Σ_blk Σ_{z ∈ blk} (z − z̄_blk)(z − z̄_blk)ᵀ
    ///   = (C − Σ_blk o_blk o_blkᵀ / m_blk) / N
    /// ```
    pub fn covariance(&self) -> Matrix {
        let n = self.n_samples.max(1) as f64;
        let k = self.k;
        let mut s = Matrix::zeros(k, k);
        for a in 0..k {
            for b in a..k {
                let mut c = self.co_counts[a * k + b] as f64;
                for blk in 0..k {
                    let m = self.block_sizes[blk];
                    if m > 0 {
                        let oa = self.block_ones[blk * k + a] as f64;
                        let ob = self.block_ones[blk * k + b] as f64;
                        c -= oa * ob / m as f64;
                    }
                }
                let v = c / n;
                s[(a, b)] = v;
                s[(b, a)] = v;
            }
        }
        s
    }

    /// The naive pooled covariance (single global mean, no block
    /// centering) — kept for the stratification ablation.
    pub fn pooled_covariance(&self) -> Matrix {
        let n = self.n_samples.max(1) as f64;
        let p = self.agreement_rates();
        let mut s = Matrix::zeros(self.k, self.k);
        for a in 0..self.k {
            for b in a..self.k {
                let c = self.co_counts[a * self.k + b] as f64 / n;
                let v = c - p[a] * p[b];
                s[(a, b)] = v;
                s[(b, a)] = v;
            }
        }
        s
    }

    /// Raw second moment `E[z zᵀ]` (no mean subtraction); exposed for the
    /// robustness ablations of §4.3.
    pub fn second_moment(&self) -> Matrix {
        let n = self.n_samples.max(1) as f64;
        let mut s = Matrix::zeros(self.k, self.k);
        for a in 0..self.k {
            for b in a..self.k {
                let c = self.co_counts[a * self.k + b] as f64 / n;
                s[(a, b)] = c;
                s[(b, a)] = c;
            }
        }
        s
    }

    /// Correlation matrix of the transform samples (scale-free `S`).
    pub fn correlation(&self) -> Matrix {
        fdx_stats::correlation(&self.covariance())
    }
}

/// Runs Algorithm 2 and accumulates pair statistics.
///
/// Under [`PairSampling::CircularShift`], for each attribute the (shuffled)
/// dataset is sorted by that attribute and every row is paired with its
/// successor under a circular shift — "this heuristic allows us to obtain
/// tuple pair samples that cover a wider range of attribute values" (§4.2).
/// Under [`PairSampling::UniformRandom`], pairs are drawn uniformly.
///
/// # Panics
///
/// Panics if the dataset has fewer than 2 rows or no attributes; callers
/// (the [`crate::Fdx`] pipeline) validate first.
pub fn pair_transform(ds: &Dataset, cfg: &TransformConfig) -> PairStats {
    let n = ds.nrows();
    let k = ds.ncols();
    assert!(n >= 2, "pair transform requires at least two rows");
    assert!(k >= 1, "pair transform requires at least one attribute");

    let mut shuffled: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    shuffled.shuffle(&mut rng);

    let attrs: Vec<usize> = (0..k).collect();
    let threads = fdx_par::resolve_threads(cfg.threads);
    if cfg.parallel && k > 1 && threads > 1 {
        // Chunk boundaries depend only on `k` (never on the thread count),
        // and fdx-par returns the partials in attribute order, so the
        // ordered merge below is the identical reduction at every thread
        // count (integer counters make it commutative anyway — the ordering
        // is what keeps the contract checkable). At most 32 partial
        // `PairStats` are materialized, bounding memory at large `k`.
        let chunk = k.div_ceil(32);
        let partials = fdx_par::par_map_chunks(&attrs, chunk, threads, |_, ids| {
            let mut local = PairStats::zeros(k);
            for &attr in ids {
                accumulate_attribute(ds, cfg, &shuffled, attr, cfg.seed, &mut local);
            }
            local
        });
        let mut total = PairStats::zeros(k);
        for p in &partials {
            total.merge(p);
        }
        total
    } else {
        let mut total = PairStats::zeros(k);
        for &attr in &attrs {
            accumulate_attribute(ds, cfg, &shuffled, attr, cfg.seed, &mut total);
        }
        total
    }
}

/// Accumulates the pair block contributed by sorting on `attr`.
///
/// The hot path is fully bit-packed: each attribute's codes are gathered
/// into the block's sort order once (a sequential write over an
/// L1-resident column), agreement bits are packed word-at-a-time with the
/// branch-free `fdx_stats` packers, and all `k²` co-agreement counts come
/// out of the cache-blocked popcount Gram kernel
/// ([`BitMatrix::gram_accumulate`]). Every aggregate is an exact integer,
/// so this path is bit-identical to any scalar evaluation of the same
/// pairs — the property `tests/bitkernel.rs` pins.
fn accumulate_attribute(
    ds: &Dataset,
    cfg: &TransformConfig,
    shuffled: &[usize],
    attr: usize,
    seed: u64,
    out: &mut PairStats,
) {
    let n = ds.nrows();
    let k = ds.ncols();
    let nulls_equal = match cfg.null_policy {
        NullPolicy::NeverEqual => false,
        NullPolicy::NullEqualsNull => true,
    };
    match cfg.sampling {
        PairSampling::CircularShift => {
            // Stable sort of the shuffled order by this attribute's codes
            // (a counting sort over the dense code space — same permutation
            // as `sort_by_key`); pair r compares sort position r with its
            // circular successor.
            let codes = ds.column(attr).codes();
            let mut order: Vec<usize> = Vec::new();
            stable_sort_by_codes(shuffled, codes, &mut order);
            let limit = cfg.max_pairs_per_attr.unwrap_or(n).min(n);
            if limit == 0 {
                return;
            }
            let mut bits = BitMatrix::zeros(k, limit);
            // Gathered codes carry a wrap sentinel (`gathered[n] =
            // gathered[0]`) so the packer's pair loop is a pure adjacent
            // compare with no wraparound branch.
            let mut gathered = vec![0u32; n + 1];
            for a in 0..k {
                let col = ds.column(a).codes();
                for (g, &r) in gathered[..n].iter_mut().zip(&order) {
                    *g = col[r];
                }
                gathered[n] = gathered[0];
                pack_adjacent_agreement(&gathered, limit, nulls_equal, bits.row_mut(a));
            }
            accumulate_block(&bits, attr, out);
        }
        PairSampling::UniformRandom { pairs_per_attr } => {
            // Derive a distinct stream per attribute for reproducibility
            // independent of thread scheduling.
            let mut rng =
                ChaCha8Rng::seed_from_u64(seed ^ (attr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let pairs: Vec<(usize, usize)> = (0..pairs_per_attr)
                .map(|_| {
                    let i = rng.gen_range(0..n);
                    let mut j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    (i, j)
                })
                .collect();
            if pairs.is_empty() {
                return;
            }
            let m = pairs.len();
            let mut bits = BitMatrix::zeros(k, m);
            let mut left = vec![0u32; m];
            let mut right = vec![0u32; m];
            for a in 0..k {
                let col = ds.column(a).codes();
                for ((l, r), &(i, j)) in left.iter_mut().zip(right.iter_mut()).zip(&pairs) {
                    *l = col[i];
                    *r = col[j];
                }
                pack_pair_agreement(&left, &right, nulls_equal, bits.row_mut(a));
            }
            accumulate_block(&bits, attr, out);
        }
    }
}

/// Folds one sort block's packed agreement rows into the running totals.
///
/// Row popcounts feed `ones` and `block_ones`; the blocked popcount Gram
/// feeds `co_counts`, whose diagonal (`row AND row`) is exactly the row
/// popcount, so the diagonal receives the same increment as `ones`.
fn accumulate_block(bits: &BitMatrix, attr: usize, out: &mut PairStats) {
    let k = bits.rows();
    let m = bits.bits();
    let pops = bits.row_popcounts();
    for a in 0..k {
        out.ones[a] += pops[a];
        out.block_ones[attr * k + a] += pops[a];
    }
    bits.gram_accumulate(BitMatrix::DEFAULT_BLOCK_WORDS, &mut out.co_counts);
    out.block_sizes[attr] += m;
    out.n_samples += m;
}

/// Materializes Algorithm 2's binary matrix `D_t` (`pairs × k`, entries
/// 0/1). Useful for tests, ablations, and feeding a generic structure
/// learner; the FDX pipeline itself uses the streaming [`pair_transform`].
pub fn pair_transform_matrix(ds: &Dataset, cfg: &TransformConfig) -> Matrix {
    let n = ds.nrows();
    let k = ds.ncols();
    assert!(n >= 2 && k >= 1);
    let mut shuffled: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    shuffled.shuffle(&mut rng);

    let mut rows: Vec<(usize, usize)> = Vec::new();
    for attr in 0..k {
        match cfg.sampling {
            PairSampling::CircularShift => {
                let codes = ds.column(attr).codes();
                let mut order = shuffled.clone();
                order.sort_by_key(|&r| codes[r]);
                let limit = cfg.max_pairs_per_attr.unwrap_or(n).min(n);
                for r in 0..limit {
                    rows.push((order[r], order[(r + 1) % n]));
                }
            }
            PairSampling::UniformRandom { pairs_per_attr } => {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    cfg.seed ^ (attr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                for _ in 0..pairs_per_attr {
                    let i = rng.gen_range(0..n);
                    let mut j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    rows.push((i, j));
                }
            }
        }
    }
    let mut m = Matrix::zeros(rows.len(), k);
    for (r, &(i, j)) in rows.iter().enumerate() {
        for a in 0..k {
            let ci = ds.code(i, a);
            let cj = ds.code(j, a);
            let equal = match cfg.null_policy {
                NullPolicy::NeverEqual => ci != NULL_CODE && ci == cj,
                NullPolicy::NullEqualsNull => ci == cj,
            };
            if equal {
                m[(r, a)] = 1.0;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdx_data::Dataset;

    fn ds() -> Dataset {
        Dataset::from_string_rows(
            &["zip", "city"],
            &[
                &["60608", "Chicago"],
                &["60611", "Chicago"],
                &["60608", "Chicago"],
                &["53703", "Madison"],
                &["53703", "Madison"],
                &["53706", "Madison"],
            ],
        )
    }

    #[test]
    fn circular_shift_sample_count() {
        let stats = pair_transform(&ds(), &TransformConfig::default());
        assert_eq!(stats.num_samples(), 6 * 2);
        assert_eq!(stats.num_attributes(), 2);
    }

    #[test]
    fn stats_match_materialized_matrix() {
        let cfg = TransformConfig {
            parallel: false,
            ..TransformConfig::default()
        };
        let stats = pair_transform(&ds(), &cfg);
        let m = pair_transform_matrix(&ds(), &cfg);
        assert_eq!(m.rows(), stats.num_samples());
        // Pooled covariance from streaming stats equals the plain covariance
        // of the materialized matrix (block centering is a refinement on
        // top, exercised separately).
        let s_stream = stats.pooled_covariance();
        let s_mat = fdx_stats::covariance(&m);
        for a in 0..2 {
            for b in 0..2 {
                assert!(
                    (s_stream[(a, b)] - s_mat[(a, b)]).abs() < 1e-12,
                    "({a},{b}): {} vs {}",
                    s_stream[(a, b)],
                    s_mat[(a, b)]
                );
            }
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = pair_transform(
            &ds(),
            &TransformConfig {
                parallel: false,
                ..TransformConfig::default()
            },
        );
        let parallel = pair_transform(
            &ds(),
            &TransformConfig {
                parallel: true,
                ..TransformConfig::default()
            },
        );
        assert_eq!(serial.num_samples(), parallel.num_samples());
        assert_eq!(serial.co_counts, parallel.co_counts);
        assert_eq!(serial.ones, parallel.ones);
    }

    #[test]
    fn single_chunk_stream_stats_are_bit_identical_to_resident() {
        // The streaming accumulator (fdx_stats::StreamStats) fed the whole
        // dataset as one chunk must replicate the resident transform
        // operation for operation: same shuffle stream, same stable sort,
        // same popcount math — every counter and every covariance bit.
        let ds = ds();
        let cfg = TransformConfig::default();
        let resident = pair_transform(&ds, &cfg);
        let cols: Vec<&[u32]> = (0..ds.ncols()).map(|a| ds.column(a).codes()).collect();
        let mut stream = fdx_stats::StreamStats::new(ds.ncols(), cfg.seed, false);
        stream.accumulate_chunk(&cols, 0);

        assert_eq!(stream.co_counts(), resident.co_counts.as_slice());
        assert_eq!(stream.ones(), resident.ones.as_slice());
        assert_eq!(stream.block_ones(), resident.block_ones.as_slice());
        let sizes: Vec<u64> = resident.block_sizes.iter().map(|&s| s as u64).collect();
        assert_eq!(stream.block_sizes(), sizes.as_slice());
        assert_eq!(stream.num_samples() as usize, resident.num_samples());

        let a = stream.covariance();
        let b = resident.covariance();
        for i in 0..ds.ncols() {
            for j in 0..ds.ncols() {
                assert_eq!(
                    a[(i, j)].to_bits(),
                    b[(i, j)].to_bits(),
                    "covariance ({i},{j}) must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn fd_shows_as_positive_covariance() {
        let stats = pair_transform(&ds(), &TransformConfig::default());
        let s = stats.covariance();
        // Agreement on zip implies agreement on city: positive covariance.
        assert!(s[(0, 1)] > 0.0, "cov = {}", s[(0, 1)]);
    }

    #[test]
    fn null_policy_changes_agreement() {
        let ds = Dataset::from_string_rows(&["a", "b"], &[&["", "x"], &["", "x"], &["1", "y"]]);
        let never = pair_transform(
            &ds,
            &TransformConfig {
                null_policy: NullPolicy::NeverEqual,
                ..TransformConfig::default()
            },
        );
        let nulls_eq = pair_transform(
            &ds,
            &TransformConfig {
                null_policy: NullPolicy::NullEqualsNull,
                ..TransformConfig::default()
            },
        );
        assert!(nulls_eq.ones[0] > never.ones[0]);
    }

    #[test]
    fn sorted_pairing_maximizes_self_agreement() {
        // Sorting by an attribute pairs duplicate values adjacently, so the
        // diagonal agreement count for that attribute is at least the count
        // under random pairing.
        let stats = pair_transform(&ds(), &TransformConfig::default());
        let rates = stats.agreement_rates();
        // zip has duplicates 60608×2, 53703×2 → at least 2 agreeing pairs in
        // its own sorted block of 6.
        assert!(rates[0] > 0.0);
        // city: 2 values × 3 rows → sorted block gives 4 agreeing pairs.
        assert!(rates[1] >= rates[0]);
    }

    #[test]
    fn uniform_sampling_counts() {
        let cfg = TransformConfig {
            sampling: PairSampling::UniformRandom { pairs_per_attr: 10 },
            ..TransformConfig::default()
        };
        let stats = pair_transform(&ds(), &cfg);
        assert_eq!(stats.num_samples(), 20);
    }

    #[test]
    fn max_pairs_cap_respected() {
        let cfg = TransformConfig {
            max_pairs_per_attr: Some(3),
            ..TransformConfig::default()
        };
        let stats = pair_transform(&ds(), &cfg);
        assert_eq!(stats.num_samples(), 3 * 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = pair_transform(&ds(), &TransformConfig::default());
        let b = pair_transform(&ds(), &TransformConfig::default());
        assert_eq!(a.co_counts, b.co_counts);
        let c = pair_transform(
            &ds(),
            &TransformConfig {
                seed: 99,
                ..TransformConfig::default()
            },
        );
        // Different shuffle may (or may not) change counts; sample count is
        // invariant either way.
        assert_eq!(a.num_samples(), c.num_samples());
    }

    #[test]
    fn key_column_has_low_agreement() {
        // All-distinct key: only adjacent-in-sorted-order equal values agree,
        // of which there are none.
        let ds = Dataset::from_string_rows(
            &["key", "grp"],
            &[&["a", "x"], &["b", "x"], &["c", "y"], &["d", "y"]],
        );
        let stats = pair_transform(&ds, &TransformConfig::default());
        assert_eq!(stats.ones[0], 0);
        assert!(stats.ones[1] > 0);
    }
}
