//! Quickstart: discover functional dependencies in a small noisy table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fdx::{Fdx, FdxConfig};
use fdx_data::read_csv_str;

fn main() {
    // A miniature version of the paper's Figure 1 input: Chicago food
    // inspections with a typo ("Cicago") and a missing value.
    let csv = "\
DBAName,Address,City,State,ZipCode
Harry Caray's,835 N Michigan Av,Chicago,IL,60611
Mity Nice Bar,835 N Michigan Av,Chicago,IL,60611
Foodlife,835 N Michigan Av,Chicago,IL,60611
Pierrot,3493 Washington,Cicago,IL,60608
Pierrot,3493 Washington,Chicago,IL,60608
Graft,3435 W Washington,Chicago,IL,60612
Graft,3435 W Washington,Chicago,,60612
Burger Joint,100 W Division,Chicago,IL,60610
Burger Joint,100 W Division,Chicago,IL,60610
Taqueria Real,200 S Ashland,Chicago,IL,60607
Taqueria Real,200 S Ashland,Chicago,IL,60607
Deep Dish Co,300 N Clark,Chicago,IL,60654
Deep Dish Co,300 N Clark,Chicago,IL,60654
Green Mill,4802 N Broadway,Chicago,IL,60640
Green Mill,4802 N Broadway,Chicago,IL,60640
";
    let data = read_csv_str(csv).expect("inline CSV is well-formed");
    println!(
        "Input: {} rows x {} attributes, {} missing cells\n",
        data.nrows(),
        data.ncols(),
        data.null_cells()
    );

    let result = Fdx::new(FdxConfig::default())
        .discover(&data)
        .expect("discovery succeeds on non-degenerate input");

    println!("Discovered FDs:");
    print!("{}", result.fds.render(data.schema()));
    println!(
        "\nTimings: transform {:.4}s, model {:.4}s",
        result.timings.transform_secs,
        result.timings.model_secs()
    );
    println!("Attribute order used: {:?}", result.order.as_slice());
}
