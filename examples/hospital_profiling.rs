//! Data profiling for data preparation (paper §5.5): run FDX on the
//! Hospital dataset, render the autoregression heatmap of Figure 3, and
//! show how the discovered dependencies predict where automated data
//! cleaning will work.
//!
//! ```text
//! cargo run --release --example hospital_profiling
//! ```

use fdx::{render_autoregression_heatmap, Fdx, FdxConfig};
use fdx_synth::realworld;

fn main() {
    let rw = realworld::hospital(0);
    println!(
        "Hospital: {} rows x {} attributes, {} naturally-missing cells\n",
        rw.data.nrows(),
        rw.data.ncols(),
        rw.data.null_cells()
    );

    let result = Fdx::new(FdxConfig::default())
        .discover(&rw.data)
        .expect("hospital stand-in is well-formed");

    println!("Autoregression matrix (Figure 3's heatmap):\n");
    println!(
        "{}",
        render_autoregression_heatmap(&result.autoregression, rw.data.schema())
    );
    println!("Discovered FDs:");
    print!("{}", result.fds.render(rw.data.schema()));

    // Profiling readout: attributes inside a dependency are the ones
    // automated cleaning (imputation, violation repair) can actually fix.
    let mut in_fd = vec![false; rw.data.ncols()];
    for (x, y) in result.fds.edge_set() {
        in_fd[x] = true;
        in_fd[y] = true;
    }
    println!("\nCleaning guidance (paper §5.5, Table 7's split):");
    for a in 0..rw.data.ncols() {
        let verdict = if in_fd[a] {
            "dependency-backed: automated repair should be accurate"
        } else {
            "no dependency found: treat automated repairs with suspicion"
        };
        println!("  {:<18} {}", rw.data.schema().name(a), verdict);
    }
}
