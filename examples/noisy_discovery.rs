//! Robustness demo: FDX vs TANE as cell noise rises on synthetic data with
//! planted FDs (the behaviour behind the paper's Figures 2 and 7).
//!
//! ```text
//! cargo run --release --example noisy_discovery
//! ```

use fdx::{Fdx, FdxConfig};
use fdx_baselines::{Tane, TaneConfig};
use fdx_eval::edge_prf;
use fdx_synth::generator::{self, SynthConfig};

fn main() {
    println!("{:>8}  {:>10}  {:>10}", "noise", "FDX F1", "TANE F1");
    for noise in [0.0, 0.01, 0.05, 0.1, 0.3] {
        let data = generator::generate(&SynthConfig {
            tuples: 1_000,
            attributes: 10,
            domain_range: (64, 216),
            noise_rate: noise,
            seed: 11,
        });
        let fdx = Fdx::new(FdxConfig::default().for_noise_rate(noise))
            .discover(&data.noisy)
            .map(|r| r.fds)
            .unwrap_or_default();
        let tane = Tane::new(TaneConfig {
            max_error: noise.max(0.005),
            ..Default::default()
        })
        .discover(&data.noisy);
        println!(
            "{:>8.2}  {:>10.3}  {:>10.3}",
            noise,
            edge_prf(&data.true_fds, &fdx).f1,
            edge_prf(&data.true_fds, &tane).f1,
        );
    }
    println!("\nPlanted FDs mix exact dependencies with strong (rho <= 0.85)");
    println!("correlations; TANE reports every syntactically-valid FD and its");
    println!("precision collapses, while FDX stays parsimonious (paper, Fig. 2).");
}
