//! Feature engineering with FDX (paper §5.5, Figure 5): which attributes
//! determine a prediction target, discovered without training any model.
//!
//! ```text
//! cargo run --release --example feature_engineering
//! ```

use fdx::{Fdx, FdxConfig};
use fdx_synth::realworld;

fn main() {
    // Australian Credit Approval: target A15.
    let australian = realworld::australian(0);
    report(&australian, "A15");
    // Mammographic masses: target severity.
    let mammo = realworld::mammographic(0);
    report(&mammo, "severity");
}

fn report(rw: &realworld::RealWorld, target: &str) {
    let target_id = rw.data.schema().id_of(target).expect("target exists");
    let result = Fdx::new(FdxConfig::default())
        .discover(&rw.data)
        .expect("stand-in is well-formed");
    println!("=== {} (goal attribute: {target})", rw.name);
    println!("Discovered FDs:");
    print!("{}", result.fds.render(rw.data.schema()));
    let mut informative: Vec<&str> = result
        .fds
        .iter()
        .filter(|fd| fd.rhs() == target_id)
        .flat_map(|fd| fd.lhs().iter().map(|&a| rw.data.schema().name(a)))
        .collect();
    // The target may itself determine downstream attributes (e.g. severity
    // determines the BI-RADS assessment) — report those too.
    let downstream: Vec<&str> = result
        .fds
        .iter()
        .filter(|fd| fd.lhs().contains(&target_id))
        .map(|fd| rw.data.schema().name(fd.rhs()))
        .collect();
    informative.sort_unstable();
    informative.dedup();
    if informative.is_empty() {
        println!("-> no determinant found for {target}");
    } else {
        println!("-> most informative features for predicting {target}: {informative:?}");
    }
    if !downstream.is_empty() {
        println!("-> {target} itself determines: {downstream:?}");
    }
    println!();
}
