//! # fdx — functional dependency discovery in noisy data
//!
//! A from-scratch Rust reproduction of *"A Statistical Perspective on
//! Discovering Functional Dependencies in Noisy Data"* (Zhang, Guo,
//! Rekatsinas — SIGMOD 2020). FDX casts FD discovery as structure learning
//! of a linear structural equation model over tuple-pair agreement
//! indicators: transform the data into pair-difference samples, estimate a
//! sparse inverse covariance, factorize it as `U D Uᵀ` under a
//! fill-reducing attribute order, and read the FDs off the autoregression
//! matrix `B = I − U`.
//!
//! This umbrella crate re-exports the public API of the core engine and the
//! supporting crates:
//!
//! * [`Fdx`] / [`FdxConfig`] / [`FdxResult`] — the discovery engine,
//! * [`fdx_data`] — datasets, schemas, values, FDs, CSV I/O,
//! * [`fdx_synth`] — the paper's synthetic generators, noise channels, and
//!   real-world stand-ins,
//! * [`fdx_bayesnet`] — the five benchmark Bayesian networks of Table 1,
//! * [`fdx_baselines`] — TANE, Pyro-style search, RFI, CORDS, GL-raw,
//! * [`fdx_eval`] — metrics and the method harness,
//! * [`fdx_ml`] — the Table 7 imputers,
//! * [`fdx_linalg`] / [`fdx_glasso`] / [`fdx_order`] / [`fdx_stats`] — the
//!   numerical substrates,
//! * [`fdx_par`] — the deterministic scoped-thread parallel runtime,
//! * [`fdx_serve`] — the panic-isolated, deadline-aware discovery server.
//!
//! # Quickstart
//!
//! ```
//! use fdx::{Fdx, FdxConfig};
//! use fdx_data::Dataset;
//!
//! let rows: Vec<[String; 2]> = (0..60)
//!     .map(|i| {
//!         let zip = i % 12;
//!         [format!("z{zip}"), format!("city{}", zip / 3)]
//!     })
//!     .collect();
//! let refs: Vec<Vec<&str>> = rows
//!     .iter()
//!     .map(|r| vec![r[0].as_str(), r[1].as_str()])
//!     .collect();
//! let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
//! let ds = Dataset::from_string_rows(&["zip", "city"], &slices);
//!
//! let result = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
//! assert_eq!(result.fds.render(ds.schema()).trim(), "zip -> city");
//! ```

pub use fdx_core::{
    pair_transform, pair_transform_matrix, refine, refine_with_options,
    render_autoregression_heatmap, score_fd, FdScore, Fdx, FdxConfig, FdxError, FdxResult,
    FdxTimings, NullPolicy, PairSampling, PairStats, RecoveryRung, RefineOptions, RunHealth,
    TransformConfig,
};

pub use fdx_baselines;
pub use fdx_bayesnet;
pub use fdx_data;
pub use fdx_eval;
pub use fdx_glasso;
pub use fdx_linalg;
pub use fdx_ml;
pub use fdx_order;
pub use fdx_par;
pub use fdx_serve;
pub use fdx_stats;
pub use fdx_synth;
