//! Ingest fault matrix: every (fault × bad-row policy) cell pinned.
//!
//! Four `fdx_obs::faults` points model the real out-of-core failure modes
//! — a torn download ([`ingest::FAULT_SHORT_READ`]), a bad disk sector
//! ([`ingest::FAULT_CORRUPT_CHUNK`]), a flaky NFS read
//! ([`ingest::FAULT_DISK_STALL`]) and an allocation failure at a chunk
//! merge ([`ingest::FAULT_OOM_AT_CHUNK`]). Each is armed under each
//! [`BadRowPolicy`]; every cell must end in a typed outcome — an
//! [`IngestError`] or a degraded [`IngestHealth`] — never a panic and
//! never a silently wrong answer. All twelve outcomes are deterministic
//! and asserted exactly.
//!
//! A second test drives the same faults end-to-end through `fdx-serve`
//! path-based discovery: the reply must carry the `source` block and the
//! degradation flag, and the server must survive.

use fdx_data::ingest::{
    FAULT_CORRUPT_CHUNK, FAULT_DISK_STALL, FAULT_OOM_AT_CHUNK, FAULT_SHORT_READ,
};
use fdx_data::{ingest_csv_file, BadRowPolicy, IngestConfig, Ingested};
use std::path::PathBuf;

/// 2000 clean rows of the zip -> city -> state corpus.
fn write_corpus(rows: usize, name: &str) -> PathBuf {
    let mut csv = String::from("zip,city,state\n");
    for i in 0..rows {
        let z = i % 16;
        csv.push_str(&format!("z{z},c{},s{}\n", z / 2, z / 8));
    }
    let path = std::env::temp_dir().join(format!("fdx-faults-{}-{name}.csv", std::process::id()));
    std::fs::write(&path, csv).expect("write corpus");
    path
}

fn quarantine_path(cell: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "fdx-faults-{}-{cell}-quarantine.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// The three policies for one matrix row; `cell` names the fault for the
/// quarantine file.
fn policies(cell: &str) -> [(&'static str, BadRowPolicy); 3] {
    [
        ("abort", BadRowPolicy::Abort),
        ("skip", BadRowPolicy::Skip),
        (
            "quarantine",
            BadRowPolicy::Quarantine(quarantine_path(cell)),
        ),
    ]
}

#[test]
fn short_read_matrix() {
    // A short read truncates the stream mid-row: the ragged tail row is the
    // single bad row; everything before it is kept.
    let path = write_corpus(2000, "short");
    for (name, policy) in policies("short") {
        let _f = fdx_obs::faults::arm_times(FAULT_SHORT_READ, 1);
        let got = ingest_csv_file(
            &path,
            &IngestConfig {
                on_bad_row: policy.clone(),
                ..IngestConfig::default()
            },
        );
        match (name, got) {
            ("abort", Err(e)) => {
                let msg = e.to_string();
                assert!(msg.contains("line 1001"), "{msg}");
                assert!(msg.contains("has 2 fields, expected 3"), "{msg}");
            }
            ("abort", Ok(_)) => panic!("abort policy must surface the truncated row"),
            (
                _,
                Ok(Ingested {
                    dataset, health, ..
                }),
            ) => {
                assert_eq!(dataset.nrows(), 999, "{name}");
                assert_eq!(health.rows_quarantined, 1, "{name}");
                assert!(health.degraded(), "{name}");
                assert!(
                    health.notes.iter().any(|n| n.contains("short read")),
                    "{name}: {:?}",
                    health.notes
                );
                if let BadRowPolicy::Quarantine(qp) = &policy {
                    let text = std::fs::read_to_string(qp).expect("quarantine file");
                    assert_eq!(text.lines().count(), 1, "{text}");
                    assert!(text.contains(r#""kind":"quarantine""#), "{text}");
                }
            }
            (_, Err(e)) => panic!("{name} policy must degrade, not fail: {e}"),
        }
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn corrupt_chunk_matrix() {
    // A chunk-level integrity failure voids all 16 rows of the chunk at
    // once; the policy decides whether that aborts the run or quarantines
    // the whole chunk.
    let path = write_corpus(64, "corrupt");
    for (name, policy) in policies("corrupt") {
        let _f = fdx_obs::faults::arm_times(FAULT_CORRUPT_CHUNK, 1);
        let got = ingest_csv_file(
            &path,
            &IngestConfig {
                chunk_rows: Some(16),
                on_bad_row: policy.clone(),
                ..IngestConfig::default()
            },
        );
        match (name, got) {
            ("abort", Err(e)) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("corrupt chunk (integrity check failed)"),
                    "{msg}"
                );
                assert!(msg.contains("line 2"), "first chunk row is line 2: {msg}");
            }
            ("abort", Ok(_)) => panic!("abort policy must surface the corrupt chunk"),
            (
                _,
                Ok(Ingested {
                    dataset,
                    health,
                    quarantined,
                }),
            ) => {
                assert_eq!(dataset.nrows(), 48, "{name}");
                assert_eq!(health.rows_quarantined, 16, "{name}");
                assert_eq!(quarantined.len(), 16, "{name}");
                assert!(health.degraded(), "{name}");
                assert!(
                    health
                        .notes
                        .iter()
                        .any(|n| n.contains("failed integrity check")),
                    "{name}: {:?}",
                    health.notes
                );
                if let BadRowPolicy::Quarantine(qp) = &policy {
                    let text = std::fs::read_to_string(qp).expect("quarantine file");
                    assert_eq!(text.lines().count(), 16, "{text}");
                    for line in text.lines() {
                        assert!(line.contains("corrupt chunk"), "{line}");
                    }
                }
            }
            (_, Err(e)) => panic!("{name} policy must degrade, not fail: {e}"),
        }
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn disk_stall_matrix() {
    // A stalled-then-retried read loses nothing under any policy: the run
    // completes with every row and a recovery note.
    let path = write_corpus(64, "stall");
    for (name, policy) in policies("stall") {
        let _f = fdx_obs::faults::arm_times(FAULT_DISK_STALL, 1);
        let got = ingest_csv_file(
            &path,
            &IngestConfig {
                on_bad_row: policy,
                ..IngestConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: stall must never fail ingest: {e}"));
        assert_eq!(got.dataset.nrows(), 64, "{name}: stall must not lose rows");
        assert_eq!(got.health.rows_quarantined, 0, "{name}");
        assert!(got.health.degraded(), "{name}");
        assert!(
            got.health.notes.iter().any(|n| n.contains("disk stall")),
            "{name}: {:?}",
            got.health.notes
        );
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn oom_at_chunk_matrix() {
    // A forced allocation failure at a chunk merge engages the sampled-rows
    // rung (keep every 2nd row) under every policy instead of failing.
    let path = write_corpus(64, "oom");
    for (name, policy) in policies("oom") {
        let _f = fdx_obs::faults::arm_times(FAULT_OOM_AT_CHUNK, 1);
        let got = ingest_csv_file(
            &path,
            &IngestConfig {
                chunk_rows: Some(16),
                on_bad_row: policy,
                ..IngestConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: oom must degrade to sampling, not fail: {e}"));
        assert!(got.health.sampled, "{name}");
        assert_eq!(got.health.keep_every, 2, "{name}");
        assert_eq!(got.dataset.nrows(), 32, "{name}");
        assert_eq!(got.health.rows_quarantined, 0, "{name}");
        assert!(got.health.degraded(), "{name}");
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn faulted_ingest_surfaces_in_run_health() {
    // The degraded ingest propagates into RunHealth: a discover over a
    // faulted ingest reports degraded() and renders the ingest section.
    use fdx::{Fdx, FdxConfig};
    let path = write_corpus(96, "health");
    let _f = fdx_obs::faults::arm_times(FAULT_DISK_STALL, 1);
    let got = ingest_csv_file(&path, &IngestConfig::default()).expect("ingest");
    let mut result = Fdx::new(FdxConfig::with_seed(7).with_threads(1))
        .discover(&got.dataset)
        .expect("discover");
    assert!(!result.health.degraded(), "pipeline itself is clean");
    result.health.ingest = Some(got.health);
    assert!(
        result.health.degraded(),
        "ingest degradation must propagate"
    );
    let j = result.health.to_json();
    assert!(j.contains(r#""ingest":{"kind":"ingest""#), "{j}");
    assert!(j.contains("disk stall"), "{j}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn serve_path_discovery_reports_faulted_sources() {
    // End-to-end: path-based discovery through fdx-serve with request-scoped
    // ingest chaos. Faulted replies stay typed and carry the source block;
    // the server survives all of it.
    use fdx::{Fdx, FdxConfig};
    use fdx_serve::client::exchange;
    use fdx_serve::{codes, ChaosSpec, RequestFrame, Response, ServeConfig, Server};

    let path = write_corpus(96, "serve");
    let csv_path = path.to_string_lossy().to_string();

    let dataset = fdx_data::read_csv_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let reference = Fdx::new(FdxConfig::with_seed(7).with_threads(1))
        .discover(&dataset)
        .expect("direct discover");
    let reference_fds: Vec<String> = reference
        .fds
        .iter()
        .map(|fd| fd.display(dataset.schema()).to_string())
        .collect();

    let handle = Server::start(ServeConfig {
        chaos: true,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let frame = |id: &str| RequestFrame {
        id: id.to_string(),
        path: Some(csv_path.clone()),
        seed: Some(7),
        ..RequestFrame::default()
    };
    let source_of = |r: &Response| {
        r.raw
            .get("source")
            .cloned()
            .unwrap_or_else(|| panic!("no source block: {}", r.line))
    };

    // Clean path request: bit-identical to the direct run, clean source.
    let r = Response::parse(&exchange(&addr, &frame("clean").to_line()).unwrap()).unwrap();
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.degraded, Some(false), "{r:?}");
    assert_eq!(r.fds.as_deref(), Some(&reference_fds[..]), "{r:?}");
    let s = source_of(&r);
    assert_eq!(
        s.get("rows").and_then(|v| v.as_f64()),
        Some(96.0),
        "{}",
        r.line
    );
    assert_eq!(s.get("quarantined").and_then(|v| v.as_f64()), Some(0.0));
    assert_eq!(s.get("sampled").and_then(|v| v.as_bool()), Some(false));

    // Disk stall: same answer, degraded reply, source intact.
    let mut f = frame("stall");
    f.chaos.push(ChaosSpec {
        point: "ingest.disk_stall",
        times: Some(1),
        value: None,
    });
    let r = Response::parse(&exchange(&addr, &f.to_line()).unwrap()).unwrap();
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.degraded, Some(true), "{r:?}");
    assert_eq!(r.fds.as_deref(), Some(&reference_fds[..]), "{r:?}");
    assert_eq!(
        source_of(&r).get("rows").and_then(|v| v.as_f64()),
        Some(96.0)
    );

    // Forced allocation failure: the reply is degraded and its source block
    // discloses the sampled-rows rung (48 of 96 rows kept).
    let mut f = frame("oom");
    f.chaos.push(ChaosSpec {
        point: "ingest.oom_at_chunk",
        times: Some(1),
        value: None,
    });
    let r = Response::parse(&exchange(&addr, &f.to_line()).unwrap()).unwrap();
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.degraded, Some(true), "{r:?}");
    let s = source_of(&r);
    assert_eq!(s.get("sampled").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(s.get("rows").and_then(|v| v.as_f64()), Some(48.0));

    // A missing file is a typed ingest error, not a connection drop.
    let r = Response::parse(
        &exchange(
            &addr,
            &RequestFrame {
                id: "missing".to_string(),
                path: Some("/nonexistent/fdx-no-such-file.csv".to_string()),
                ..RequestFrame::default()
            }
            .to_line(),
        )
        .unwrap(),
    )
    .unwrap();
    assert!(r.code_is(codes::INGEST_ERROR), "{r:?}");

    // The server took four path requests (one faulted per cell) and lives.
    let r = Response::parse(&exchange(&addr, &frame("post").to_line()).unwrap()).unwrap();
    assert!(r.is_ok(), "{r:?}");

    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.panics, 0, "{report:?}");
    assert_eq!(report.requests, 5);
    let _ = std::fs::remove_file(path);
}
