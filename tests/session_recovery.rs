//! Crash-safe session integration: the fault × recovery matrix over the
//! wire, plus kill-and-restart byte-identity.
//!
//! Every leg drives a real `fdx-serve` instance through TCP frames —
//! `upload` / `open` / `close` / dataset-handle `discover` — against a
//! snapshot directory on disk. The contract under test:
//!
//! * a discover served from the result cache replays a result core
//!   byte-identical to the computed reply (and to a plain-CSV run of the
//!   same config);
//! * a kill (simulated by leaking the server handle so nothing drains)
//!   followed by a restart on the same directory recovers every intact
//!   snapshot and replays identical bytes;
//! * each injected session fault (`disk_full`, `partial_upload`,
//!   `torn_write`, `corrupt_crc`, `evict_during_open`) surfaces as a
//!   typed reply or a typed quarantine — never a panic, never partial
//!   state;
//! * the recovery scan is deterministic: scanning the same directory
//!   twice quarantines nothing new.

use fdx::{Fdx, FdxConfig};
use fdx_serve::client::exchange;
use fdx_serve::{codes, ChaosSpec, RequestFrame, Response, ServeConfig, Server, ServerHandle};
use std::path::PathBuf;

/// Same corpus as the chaos soak: clean FDs zip -> city -> state.
fn corpus_csv() -> String {
    let mut csv = String::from("zip,city,state\n");
    for i in 0..96 {
        let z = i % 16;
        csv.push_str(&format!("z{z},c{},s{}\n", z / 2, z / 8));
    }
    csv
}

/// A second, structurally different corpus for multi-dataset legs.
fn alt_csv(cols: &str, rows: usize) -> String {
    let width = cols.split(',').count();
    let mut csv = String::from(cols);
    csv.push('\n');
    for i in 0..rows {
        let a = i % 8;
        let fields: Vec<String> = (0..width)
            .map(|j| format!("v{}_{}", j, a >> j.min(3)))
            .collect();
        csv.push_str(&fields.join(","));
        csv.push('\n');
    }
    csv
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdx-sessrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create session dir");
    dir
}

fn start(dir: &PathBuf, chaos: bool) -> ServerHandle {
    Server::start(ServeConfig {
        chaos,
        session_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind")
}

fn send(addr: &str, line: &str) -> Response {
    let reply = exchange(addr, line).expect("exchange");
    Response::parse(&reply).expect("parse reply")
}

fn spec(point: &'static str, times: Option<u64>) -> ChaosSpec {
    ChaosSpec {
        point,
        times,
        value: None,
    }
}

/// Upload `csv` and return the 16-hex-digit handle from the reply.
fn upload(addr: &str, id: &str, csv: &str) -> (String, Response) {
    let r = send(addr, &fdx_serve::upload_line(id, csv, &[]));
    assert!(r.is_ok(), "{r:?}");
    let handle = r
        .raw
        .get("dataset")
        .and_then(|v| v.as_str())
        .expect("upload reply carries a dataset handle")
        .to_string();
    assert_eq!(handle.len(), 16, "{handle}");
    (handle, r)
}

/// A dataset-handle discover frame at the reference config (seed 7).
fn discover_frame(id: &str, handle: &str) -> RequestFrame {
    RequestFrame {
        id: id.to_string(),
        csv: String::new(),
        dataset: Some(handle.to_string()),
        seed: Some(7),
        ..RequestFrame::default()
    }
}

/// The deterministic result core of a discover reply.
fn core_of(r: &Response) -> String {
    fdx_serve::reply_result_core(&r.line)
        .unwrap_or_else(|| panic!("reply has no result core: {}", r.line))
        .to_string()
}

fn is_cached(r: &Response) -> bool {
    r.raw.get("cached").and_then(|v| v.as_bool()) == Some(true)
}

#[test]
fn upload_dedupe_open_and_cached_discover_replay_byte_identically() {
    let dir = tmpdir("cache");
    let handle = start(&dir, false);
    let addr = handle.addr().to_string();

    // Upload, then re-upload the identical bytes: same handle, deduped.
    let (ds, first) = upload(&addr, "up-1", &corpus_csv());
    assert_eq!(
        first.raw.get("deduped").and_then(|v| v.as_bool()),
        Some(false)
    );
    let (ds2, second) = upload(&addr, "up-2", &corpus_csv());
    assert_eq!(ds2, ds, "content hashing must dedupe identical uploads");
    assert_eq!(
        second.raw.get("deduped").and_then(|v| v.as_bool()),
        Some(true)
    );

    // Open: served from memory, shape intact.
    let r = send(&addr, &fdx_serve::open_line("open-1", &ds));
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(
        r.raw.get("source").and_then(|v| v.as_str()),
        Some("resident")
    );
    assert_eq!(r.raw.get("attrs").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(r.raw.get("rows").and_then(|v| v.as_u64()), Some(96));

    // First discover computes; it must match a direct in-process run.
    let dataset = fdx_data::read_csv_str(&corpus_csv()).expect("corpus");
    let reference = Fdx::new(FdxConfig::with_seed(7).with_threads(1))
        .discover(&dataset)
        .expect("direct discover");
    let reference_fds: Vec<String> = reference
        .fds
        .iter()
        .map(|fd| fd.display(dataset.schema()).to_string())
        .collect();
    assert!(!reference_fds.is_empty(), "corpus must yield FDs");

    let computed = send(&addr, &discover_frame("d-1", &ds).to_line());
    assert!(computed.is_ok(), "{computed:?}");
    assert!(!is_cached(&computed), "first discover must compute");
    assert_eq!(computed.fds.as_deref(), Some(&reference_fds[..]));
    let computed_core = core_of(&computed);

    // Second identical discover replays from the cache, byte-identical.
    let cached = send(&addr, &discover_frame("d-2", &ds).to_line());
    assert!(cached.is_ok(), "{cached:?}");
    assert!(is_cached(&cached), "{}", cached.line);
    assert_eq!(core_of(&cached), computed_core, "cache replay diverged");

    // A plain-CSV discover of the same config produces the same core:
    // the cache is transparent to results.
    let plain = send(
        &addr,
        &RequestFrame {
            id: "d-plain".to_string(),
            csv: corpus_csv(),
            seed: Some(7),
            ..RequestFrame::default()
        }
        .to_line(),
    );
    assert!(plain.is_ok(), "{plain:?}");
    assert_eq!(core_of(&plain), computed_core, "csv vs dataset-handle core");

    // Close releases the resident copy; the snapshot keeps it openable.
    let r = send(&addr, &fdx_serve::close_line("close-1", &ds));
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(
        r.raw.get("was_resident").and_then(|v| v.as_bool()),
        Some(true)
    );
    let r = send(&addr, &fdx_serve::open_line("open-2", &ds));
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.raw.get("source").and_then(|v| v.as_str()), Some("disk"));

    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.panics, 0, "{report:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_restart_replays_results_byte_identical_to_uninterrupted_run() {
    let dir = tmpdir("crash");
    let server1 = start(&dir, false);
    let addr1 = server1.addr().to_string();

    let (ds, _) = upload(&addr1, "up-1", &corpus_csv());
    let computed = send(&addr1, &discover_frame("d-1", &ds).to_line());
    assert!(computed.is_ok(), "{computed:?}");
    let pre_crash_core = core_of(&computed);

    // Kill -9 analogue: leak the handle so no drain, flush, or shutdown
    // hook runs. Everything the next server sees must already be on disk.
    std::mem::forget(server1);

    let server2 = start(&dir, false);
    let addr2 = server2.addr().to_string();
    let recovery = server2.recovery();
    assert_eq!(recovery.datasets, 1, "{recovery:?}");
    assert_eq!(recovery.results, 1, "{recovery:?}");
    assert!(recovery.quarantined.is_empty(), "{recovery:?}");

    // The dataset rehydrates bit-identically from its snapshot.
    let r = send(&addr2, &fdx_serve::open_line("open-1", &ds));
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.raw.get("source").and_then(|v| v.as_str()), Some("disk"));
    assert_eq!(r.raw.get("rows").and_then(|v| v.as_u64()), Some(96));

    // The recovered cache replays the pre-crash bytes without recomputing.
    let cached = send(&addr2, &discover_frame("d-2", &ds).to_line());
    assert!(cached.is_ok(), "{cached:?}");
    assert!(is_cached(&cached), "{}", cached.line);
    assert_eq!(
        core_of(&cached),
        pre_crash_core,
        "crash + recovery must be byte-identical to the pre-crash reply"
    );

    // And identical to an uninterrupted run: a plain-CSV discover on the
    // recovered server recomputes from scratch and lands on the same core.
    let plain = send(
        &addr2,
        &RequestFrame {
            id: "d-plain".to_string(),
            csv: corpus_csv(),
            seed: Some(7),
            ..RequestFrame::default()
        }
        .to_line(),
    );
    assert!(plain.is_ok(), "{plain:?}");
    assert_eq!(core_of(&plain), pre_crash_core, "recovered ≠ uninterrupted");

    server2.shutdown();
    let report = server2.wait();
    assert_eq!(report.panics, 0, "{report:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_matrix_over_the_wire_yields_typed_replies_and_clean_recovery() {
    let dir = tmpdir("faults");
    let server1 = start(&dir, true);
    let addr = server1.addr().to_string();

    // disk_full: typed error, no partial state.
    let r = send(
        &addr,
        &fdx_serve::upload_line(
            "up-full",
            &corpus_csv(),
            &[spec("session.disk_full", Some(1))],
        ),
    );
    assert!(r.code_is(codes::DISK_FULL), "{r:?}");

    // partial_upload: the connection "dropped" mid-body — typed error.
    let r = send(
        &addr,
        &fdx_serve::upload_line(
            "up-partial",
            &corpus_csv(),
            &[spec("session.partial_upload", Some(1))],
        ),
    );
    assert!(r.code_is(codes::UPLOAD_ERROR), "{r:?}");

    // Both faults were stateless: the clean retry is a *fresh* upload
    // (deduped=false would flip to true had either left a trace).
    let (clean, retry) = upload(&addr, "up-clean", &corpus_csv());
    assert_eq!(
        retry.raw.get("deduped").and_then(|v| v.as_bool()),
        Some(false),
        "faulted uploads must leave no partial state: {retry:?}"
    );

    // evict_during_open: the resident copy is ripped out mid-open; the
    // request transparently rehydrates from the snapshot and still runs.
    let mut evict = discover_frame("d-evict", &clean);
    evict.chaos.push(spec("session.evict_during_open", Some(1)));
    let r = send(&addr, &evict.to_line());
    assert!(r.is_ok(), "{r:?}");
    assert!(!is_cached(&r), "chaos requests bypass the cache");
    let evicted_core = core_of(&r);

    // Fault-injected results are never cached as canonical: the next
    // clean discover recomputes — landing on the same bytes — and *that*
    // run populates the cache.
    let clean_run = send(&addr, &discover_frame("d-after-evict", &clean).to_line());
    assert!(clean_run.is_ok(), "{clean_run:?}");
    assert!(!is_cached(&clean_run), "chaos runs must not seed the cache");
    assert_eq!(core_of(&clean_run), evicted_core);
    let cached = send(&addr, &discover_frame("d-cached", &clean).to_line());
    assert!(cached.is_ok(), "{cached:?}");
    assert!(is_cached(&cached), "{}", cached.line);
    assert_eq!(core_of(&cached), evicted_core);

    // torn_write / corrupt_crc: the upload *appears* durable — storage
    // lied — and the damage only surfaces at the next recovery scan.
    let r = send(
        &addr,
        &fdx_serve::upload_line(
            "up-torn",
            &alt_csv("p,q,r", 48),
            &[spec("session.torn_write", Some(1))],
        ),
    );
    assert!(r.is_ok(), "{r:?}");
    let torn = r
        .raw
        .get("dataset")
        .and_then(|v| v.as_str())
        .unwrap()
        .to_string();
    let r = send(
        &addr,
        &fdx_serve::upload_line(
            "up-crc",
            &alt_csv("u,v,w,x", 64),
            &[spec("session.corrupt_crc", Some(1))],
        ),
    );
    assert!(r.is_ok(), "{r:?}");
    let crced = r
        .raw
        .get("dataset")
        .and_then(|v| v.as_str())
        .unwrap()
        .to_string();

    // Kill. The restart scan must quarantine exactly the two damaged
    // snapshots, with their typed reasons, and keep everything intact.
    std::mem::forget(server1);
    let server2 = start(&dir, false);
    let addr2 = server2.addr().to_string();
    let recovery = server2.recovery();
    let mut reasons: Vec<&str> = recovery
        .quarantined
        .iter()
        .map(|q| q.reason.as_str())
        .collect();
    reasons.sort_unstable();
    assert_eq!(reasons, ["bad_crc", "truncated"], "{recovery:?}");
    assert_eq!(recovery.datasets, 1, "{recovery:?}");
    assert_eq!(recovery.results, 1, "{recovery:?}");

    // Quarantined handles are typed "not found"; the clean one rehydrates.
    for (id, lost) in [("open-torn", &torn), ("open-crc", &crced)] {
        let r = send(&addr2, &fdx_serve::open_line(id, lost));
        assert!(r.code_is(codes::SESSION_NOT_FOUND), "{r:?}");
    }
    let r = send(&addr2, &fdx_serve::open_line("open-clean", &clean));
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.raw.get("source").and_then(|v| v.as_str()), Some("disk"));

    // The cached result survived the crash too: cache hit after restart.
    let cached = send(&addr2, &discover_frame("d-post-crash", &clean).to_line());
    assert!(cached.is_ok(), "{cached:?}");
    assert!(is_cached(&cached), "{}", cached.line);
    assert_eq!(core_of(&cached), evicted_core);

    server2.shutdown();
    let report = server2.wait();
    assert_eq!(report.panics, 0, "{report:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hand_corrupted_snapshots_quarantine_with_typed_reasons_deterministically() {
    let dir = tmpdir("scan");
    let server1 = start(&dir, false);
    let addr = server1.addr().to_string();
    let (ds, _) = upload(&addr, "up-1", &corpus_csv());
    server1.shutdown();
    server1.wait();

    // Flip one payload byte in the real snapshot: the CRC must catch it.
    let snap = dir.join(format!("ds-{ds}.snap"));
    let mut bytes = std::fs::read(&snap).expect("snapshot on disk");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).expect("rewrite snapshot");
    // And drop in a plausible-length file that was never a record at all.
    std::fs::write(
        dir.join("zz-not-a-record.snap"),
        b"this file is long enough to reach the magic check and fail it",
    )
    .expect("write garbage");

    let server2 = start(&dir, false);
    let recovery = server2.recovery().clone();
    assert_eq!(recovery.datasets, 0, "{recovery:?}");
    let mut quarantined: Vec<(&str, &str)> = recovery
        .quarantined
        .iter()
        .map(|q| (q.file.as_str(), q.reason.as_str()))
        .collect();
    quarantined.sort_unstable();
    assert_eq!(
        quarantined,
        [
            (snap.file_name().unwrap().to_str().unwrap(), "bad_crc"),
            ("zz-not-a-record.snap", "bad_magic"),
        ],
        "{recovery:?}"
    );
    let r = send(
        &server2.addr().to_string(),
        &fdx_serve::open_line("open-gone", &ds),
    );
    assert!(r.code_is(codes::SESSION_NOT_FOUND), "{r:?}");
    server2.shutdown();
    server2.wait();

    // Determinism: the quarantine moved the files aside, so a second scan
    // of the same directory finds nothing new — recovery converges.
    let server3 = start(&dir, false);
    let again = server3.recovery();
    assert_eq!(again.datasets, 0, "{again:?}");
    assert!(again.quarantined.is_empty(), "{again:?}");
    assert!(
        dir.join("quarantine").join("zz-not-a-record.snap").exists(),
        "quarantined files are preserved for forensics, not deleted"
    );
    server3.shutdown();
    server3.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
