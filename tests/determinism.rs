//! End-to-end determinism pin: the invariant FDX-L009/L012 protect.
//!
//! `Fdx::discover` must be a pure function of (data, config): the same
//! synth corpus run under `FDX_THREADS` ∈ {1, 2, 4} has to produce
//! byte-identical run-summary JSON (timings zeroed — wall clock is the
//! one sanctioned nondeterminism) and a byte-identical rendered FD set.
//! This is what makes a result cache keyed by (dataset hash, config
//! fingerprint) sound and keeps λ-path stability scores reproducible;
//! it is also the proof that this PR's sweep fixes (BTreeMap joint
//! counts in fdx-stats, sorted CORDS majority cells, the indexed
//! partition-product scratch) are behavior-preserving.

use fdx::{Fdx, FdxConfig, FdxTimings};
use fdx_synth::generator::{self, SynthConfig};
use fdx_synth::realworld;

/// Discovers under a given `FDX_THREADS` setting and returns the
/// (FD render, zero-timing run summary) pair for every corpus member.
fn run_corpus(threads: &str) -> Vec<(String, String)> {
    // The config leaves `threads: None`, so the thread count resolves
    // through the real `FDX_THREADS` contract in fdx-par.
    std::env::set_var("FDX_THREADS", threads);
    let mut out = Vec::new();
    for seed in [1u64, 7] {
        let data = generator::generate(&SynthConfig {
            tuples: 600,
            attributes: 8,
            domain_range: (16, 64),
            noise_rate: 0.02,
            seed,
        });
        let mut result = Fdx::new(FdxConfig::default().for_noise_rate(0.02))
            .discover(&data.noisy)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        result.timings = FdxTimings::default();
        out.push((
            result.fds.render(data.noisy.schema()),
            result.summary_json(),
        ));
    }
    let rw = realworld::hospital(3);
    let mut result = Fdx::new(FdxConfig::default())
        .discover(&rw.data)
        .unwrap_or_else(|e| panic!("hospital: {e}"));
    result.timings = FdxTimings::default();
    out.push((result.fds.render(rw.data.schema()), result.summary_json()));
    out
}

#[test]
fn discovery_is_byte_identical_across_thread_counts() {
    let baseline = run_corpus("1");
    assert!(
        baseline.iter().any(|(fds, _)| !fds.trim().is_empty()),
        "corpus must exercise a non-empty FD set for the pin to mean anything"
    );
    for threads in ["2", "4"] {
        let got = run_corpus(threads);
        assert_eq!(baseline.len(), got.len());
        for (i, ((base_fds, base_json), (fds, json))) in baseline.iter().zip(&got).enumerate() {
            assert_eq!(
                base_fds, fds,
                "corpus[{i}]: FD set drifted between FDX_THREADS=1 and {threads}"
            );
            assert_eq!(
                base_json, json,
                "corpus[{i}]: run summary drifted between FDX_THREADS=1 and {threads}"
            );
        }
    }
    std::env::remove_var("FDX_THREADS");
}
