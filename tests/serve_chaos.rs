//! Chaos soak of `fdx-serve`: concurrent requests with request-scoped
//! fault injection.
//!
//! 16 simultaneous requests hit one server; 4 of them arm pipeline fault
//! points through the request `chaos` field. The server must stay up, the
//! faulted requests must come back as typed error or degraded frames, and
//! the 12 clean requests must be bit-identical to a direct in-process
//! `Fdx::discover` on the same CSV — i.e. chaos armed on one worker thread
//! never contaminates another request.
//!
//! Mid-soak, a `stats` frame polls the live journal and must show every
//! faulted request with a non-ok outcome. The final metrics snapshot is
//! flushed to `FDX_SOAK_METRICS` and the request journal to
//! `FDX_SOAK_JOURNAL` (or temp paths) so CI can upload both as artifacts.

use fdx::{Fdx, FdxConfig};
use fdx_serve::client::exchange;
use fdx_serve::{codes, ChaosSpec, RequestFrame, Response, ServeConfig, Server};
use std::path::PathBuf;
use std::thread;

/// The soak corpus: clean FDs zip -> city -> state over 96 rows.
fn soak_csv() -> String {
    let mut csv = String::from("zip,city,state\n");
    for i in 0..96 {
        let z = i % 16;
        csv.push_str(&format!("z{z},c{},s{}\n", z / 2, z / 8));
    }
    csv
}

fn clean_frame(id: &str) -> RequestFrame {
    RequestFrame {
        id: id.to_string(),
        csv: soak_csv(),
        seed: Some(7),
        ..RequestFrame::default()
    }
}

fn spec(point: &'static str, times: Option<u64>, value: Option<f64>) -> ChaosSpec {
    ChaosSpec {
        point,
        times,
        value,
    }
}

fn soak_metrics_path() -> PathBuf {
    match std::env::var("FDX_SOAK_METRICS") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => std::env::temp_dir().join(format!("fdx-soak-metrics-{}.jsonl", std::process::id())),
    }
}

fn soak_journal_path() -> PathBuf {
    match std::env::var("FDX_SOAK_JOURNAL") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => std::env::temp_dir().join(format!("fdx-soak-journal-{}.jsonl", std::process::id())),
    }
}

const FAULT_IDS: [&str; 4] = ["fault-glasso", "fault-nan", "fault-udut", "fault-skew"];

#[test]
fn chaos_soak_faulted_requests_fail_typed_clean_requests_stay_bit_identical() {
    fdx_obs::set_enabled(true);
    fdx_obs::Registry::global().reset();
    fdx_obs::journal::Journal::global().reset();

    // Reference: the exact pipeline the server runs for a clean request —
    // same CSV through the same parser, seed 7, single kernel thread.
    let dataset = fdx_data::read_csv_str(&soak_csv()).expect("soak csv");
    let reference = Fdx::new(FdxConfig::with_seed(7).with_threads(1))
        .discover(&dataset)
        .expect("direct discover");
    let reference_fds: Vec<String> = reference
        .fds
        .iter()
        .map(|fd| fd.display(dataset.schema()).to_string())
        .collect();
    assert!(!reference_fds.is_empty(), "corpus must yield FDs");
    assert!(!reference.health.degraded());

    let handle = Server::start(ServeConfig {
        queue_cap: 32,
        chaos: true,
        metrics_path: Some(soak_metrics_path()),
        journal_path: Some(soak_journal_path()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    // 4 faulted + 12 clean, all in flight at once.
    let mut frames: Vec<RequestFrame> = Vec::new();
    let mut f = clean_frame("fault-glasso");
    f.chaos.push(spec("glasso.force_no_converge", None, None));
    frames.push(f);
    let mut f = clean_frame("fault-nan");
    f.chaos.push(spec("covariance.inject_nan", None, None));
    frames.push(f);
    let mut f = clean_frame("fault-udut");
    f.chaos.push(spec("udut.force_not_pd", Some(1), None));
    frames.push(f);
    let mut f = clean_frame("fault-skew");
    f.deadline_ms = Some(5_000);
    f.chaos.push(spec("clock.skew", None, Some(3_600.0)));
    frames.push(f);
    for i in 0..12 {
        frames.push(clean_frame(&format!("clean-{i}")));
    }

    let joins: Vec<_> = frames
        .into_iter()
        .map(|frame| {
            let a = addr.clone();
            thread::spawn(move || {
                let line = exchange(&a, &frame.to_line()).expect("exchange");
                Response::parse(&line).expect("parse reply")
            })
        })
        .collect();
    let replies: Vec<Response> = joins.into_iter().map(|j| j.join().unwrap()).collect();

    let by_id = |id: &str| -> &Response {
        replies
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("no reply for {id}"))
    };

    // Unbounded glasso non-convergence: the recovery ladder descends to
    // direct inversion — a degraded but successful discovery.
    let r = by_id("fault-glasso");
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.degraded, Some(true), "{r:?}");
    assert!(r.rung.unwrap_or(0) >= 2, "{r:?}");

    // NaN in the covariance trips the finiteness guard: typed error.
    let r = by_id("fault-nan");
    assert!(r.code_is(codes::DISCOVER_ERROR), "{r:?}");
    assert!(r.detail.as_deref().unwrap_or("").contains("covariance"));

    // One not-PD factorization: ridge retry succeeds, flagged degraded.
    let r = by_id("fault-udut");
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.degraded, Some(true), "{r:?}");

    // Clock skew blows the 5 s deadline inside the pipeline budget check.
    let r = by_id("fault-skew");
    assert!(r.code_is(codes::DEADLINE_EXCEEDED), "{r:?}");

    // The 12 clean requests: ok, pristine rung, and FD output bit-identical
    // to the direct run — no fault leaked across worker threads.
    for i in 0..12 {
        let r = by_id(&format!("clean-{i}"));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.degraded, Some(false), "chaos leaked into {r:?}");
        assert_eq!(r.rung, Some(1), "{r:?}");
        assert_eq!(
            r.fds.as_deref(),
            Some(&reference_fds[..]),
            "clean reply diverged from direct discover: {r:?}"
        );
    }

    // Mid-soak introspection: a `stats` frame (answered on the accept
    // thread) sees all 16 soaked requests in the journal — the 4 faulted
    // ones with non-ok outcomes, the clean ones as "ok".
    let stats = fdx_serve::stats_request(
        &addr,
        "soak-stats",
        Some(64),
        &fdx_serve::RetryPolicy::none(),
    )
    .expect("stats reply");
    assert!(stats.is_ok(), "{stats:?}");
    let journal = stats
        .raw
        .get("journal")
        .and_then(|j| j.as_arr())
        .expect("journal array");
    assert_eq!(journal.len(), 16, "{}", stats.line);
    let outcome_of = |id: &str| -> &str {
        journal
            .iter()
            .find(|e| e.get("id").and_then(|v| v.as_str()) == Some(id))
            .and_then(|e| e.get("outcome").and_then(|o| o.as_str()))
            .unwrap_or_else(|| panic!("no journal entry for {id}: {}", stats.line))
    };
    for id in FAULT_IDS {
        assert_ne!(outcome_of(id), "ok", "{id} must journal a non-ok outcome");
    }
    assert_eq!(outcome_of("fault-nan"), codes::DISCOVER_ERROR);
    assert_eq!(outcome_of("fault-skew"), codes::DEADLINE_EXCEEDED);
    assert_eq!(outcome_of("fault-glasso"), "degraded");
    assert_eq!(outcome_of("fault-udut"), "degraded");
    for i in 0..12 {
        assert_eq!(outcome_of(&format!("clean-{i}")), "ok");
    }

    // The server survived the soak: one more request round-trips clean.
    let line = exchange(&addr, &clean_frame("post-soak").to_line()).expect("post-soak");
    let r = Response::parse(&line).unwrap();
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.fds.as_deref(), Some(&reference_fds[..]));

    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.panics, 0, "{report:?}");
    assert_eq!(report.requests, 17, "stats polls are not requests");
    assert_eq!(report.completed, 17);
    assert_eq!(report.shed, 0);
    assert_eq!(report.stats_requests, 1);
    assert!(!report.drain_timed_out);

    // The soak metrics artifact was flushed whole.
    let text = std::fs::read_to_string(soak_metrics_path()).expect("soak metrics");
    assert!(text.contains("\"fdx.serve.requests\""), "{text}");
    assert!(text.contains("\"fdx.serve.deadline_exceeded\""), "{text}");
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }

    // The journal artifact holds all 17 served requests; the faulted ids
    // carry the same non-ok outcomes the live stats poll showed.
    let jtext = std::fs::read_to_string(soak_journal_path()).expect("soak journal");
    let entries: Vec<fdx_serve::json::JsonValue> = jtext
        .lines()
        .map(|l| fdx_serve::json::parse(l).expect("journal line parses"))
        .collect();
    assert_eq!(entries.len(), 17, "{jtext}");
    for id in FAULT_IDS {
        let e = entries
            .iter()
            .find(|e| e.get("id").and_then(|v| v.as_str()) == Some(id))
            .unwrap_or_else(|| panic!("{id} missing from journal artifact"));
        assert_ne!(
            e.get("outcome").and_then(|o| o.as_str()),
            Some("ok"),
            "{id}: {e:?}"
        );
    }

    fdx_obs::set_enabled(false);
    fdx_obs::Registry::global().reset();
}

/// Kill-and-restart leg: a server with a session directory is killed
/// without any drain (the handle is leaked, so no shutdown hook runs)
/// while holding an uploaded dataset and a populated result cache. A
/// fresh server on the same directory must recover both and replay the
/// cached reply core byte-for-byte — crash + recovery is indistinguishable
/// from an uninterrupted run.
#[test]
fn kill_and_restart_mid_soak_recovers_sessions_byte_identically() {
    let dir = std::env::temp_dir().join(format!("fdx-chaos-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("session dir");

    let server1 = Server::start(ServeConfig {
        queue_cap: 32,
        session_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr1 = server1.addr().to_string();

    // Upload once, then soak the handle with concurrent discovers: the
    // first to land computes and caches, the rest replay. All cores must
    // agree regardless of compute/replay interleaving.
    let up = Response::parse(
        &exchange(&addr1, &fdx_serve::upload_line("kill-up", &soak_csv(), &[])).expect("upload"),
    )
    .unwrap();
    assert!(up.is_ok(), "{up:?}");
    let handle_hex = up
        .raw
        .get("dataset")
        .and_then(|v| v.as_str())
        .expect("dataset handle")
        .to_string();
    let discover = |id: &str| RequestFrame {
        id: id.to_string(),
        csv: String::new(),
        dataset: Some(handle_hex.clone()),
        seed: Some(7),
        ..RequestFrame::default()
    };
    let joins: Vec<_> = (0..8)
        .map(|i| {
            let a = addr1.clone();
            let frame = discover(&format!("kill-d{i}"));
            thread::spawn(move || {
                let line = exchange(&a, &frame.to_line()).expect("exchange");
                Response::parse(&line).expect("parse reply")
            })
        })
        .collect();
    let mut cores: Vec<String> = joins
        .into_iter()
        .map(|j| {
            let r = j.join().unwrap();
            assert!(r.is_ok(), "{r:?}");
            fdx_serve::reply_result_core(&r.line)
                .expect("result core")
                .to_string()
        })
        .collect();
    cores.dedup();
    assert_eq!(cores.len(), 1, "compute and cache replay must agree");
    let pre_kill_core = cores.remove(0);

    // kill -9: leak the handle. No drain, no flush, no goodbye.
    std::mem::forget(server1);

    let server2 = Server::start(ServeConfig {
        queue_cap: 32,
        session_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("rebind");
    let recovery = server2.recovery();
    assert_eq!(recovery.datasets, 1, "{recovery:?}");
    assert_eq!(recovery.results, 1, "{recovery:?}");
    assert!(recovery.quarantined.is_empty(), "{recovery:?}");

    let addr2 = server2.addr().to_string();
    let r = Response::parse(
        &exchange(&addr2, &discover("kill-post").to_line()).expect("post-restart discover"),
    )
    .unwrap();
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(
        r.raw.get("cached").and_then(|v| v.as_bool()),
        Some(true),
        "{}",
        r.line
    );
    assert_eq!(
        fdx_serve::reply_result_core(&r.line).expect("core"),
        pre_kill_core,
        "recovered reply diverged from the pre-kill bytes"
    );

    server2.shutdown();
    let report = server2.wait();
    assert_eq!(report.panics, 0, "{report:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
