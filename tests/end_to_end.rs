//! Cross-crate integration tests: the full FDX pipeline against every data
//! substrate in the workspace.

use fdx::{Fdx, FdxConfig};
use fdx_bayesnet::networks;
use fdx_eval::{edge_prf, undirected_edge_prf};
use fdx_synth::generator::{self, SynthConfig};
use fdx_synth::realworld;

#[test]
fn recovers_structure_on_benchmark_networks() {
    // The paper's Table 4 setting: sampled benchmark networks with
    // ε-approximate deterministic CPTs. FDX must recover a substantial part
    // of the structure with decent precision on every network.
    for (name, net) in networks::all(0) {
        let net = net.with_fd_epsilon(0.05);
        let truth = net.true_fds();
        let ds = net.sample(2_000, 17);
        let result = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
        let undirected = undirected_edge_prf(&truth, &result.fds);
        assert!(
            undirected.f1 > 0.4,
            "{name}: undirected F1 too low: {undirected:?}\n{}",
            result.fds.render(ds.schema())
        );
    }
}

#[test]
fn beats_chance_clearly_on_synthetic_low_noise() {
    let mut f1s = Vec::new();
    for seed in 0..3 {
        let data = generator::generate(&SynthConfig {
            tuples: 1_000,
            attributes: 10,
            domain_range: (64, 216),
            noise_rate: 0.01,
            seed,
        });
        let cfg = FdxConfig::default().for_noise_rate(0.01);
        let result = Fdx::new(cfg).discover(&data.noisy).unwrap();
        f1s.push(edge_prf(&data.true_fds, &result.fds).f1);
    }
    let mean = f1s.iter().sum::<f64>() / f1s.len() as f64;
    // A random FD guess on 10 attributes lands near zero; the paper's FDX
    // medians sit well above this floor too.
    assert!(mean > 0.33, "mean F1 over 3 instances = {mean} ({f1s:?})");
}

#[test]
fn hospital_profile_matches_planted_structure() {
    let rw = realworld::hospital(0);
    let result = Fdx::new(FdxConfig::default()).discover(&rw.data).unwrap();
    let found = result.fds.edge_set();
    let id = |n: &str| rw.data.schema().id_of(n).unwrap();
    let rendered = result.fds.render(rw.data.schema());
    // The hospital-entity attributes (ProviderNumber, HospitalName,
    // Address1, PhoneNumber, ZipCode) are mutually 1-1, so any of them may
    // anchor the cluster; the invariants stable under that ambiguity:
    // the City—CountyName adjacency (Figure 3's geography readout) and
    // Condition being determined by something on the measure side. The
    // *orientation* of City—CountyName is not stable: both sit on a pure
    // low-domain chain (ZipCode -> City -> CountyName) where direction is
    // weakly identified (see "Scope and deviations" in the README), so
    // either direction passes.
    let geo = (id("City"), id("CountyName"));
    assert!(
        found.contains(&geo) || found.contains(&(geo.1, geo.0)),
        "City—CountyName adjacency missing:\n{rendered}"
    );
    let measure_side = [id("MeasureCode"), id("MeasureName"), id("StateAvg")];
    assert!(
        found
            .iter()
            .any(|&(x, y)| y == id("Condition") && measure_side.contains(&x)),
        "Condition must be determined by the measure taxonomy:\n{rendered}"
    );
    // Independent attributes (Score, Sample, EmergencyService) must stay
    // out of dependencies entirely — the paper's parsimony/no-overfit claim
    // (RFI's spurious ZipCode -> EmergencyService is the counterexample).
    for name in ["Score", "EmergencyService"] {
        let a = id(name);
        assert!(
            !found.iter().any(|&(x, y)| x == a || y == a),
            "{name} must stay independent:\n{rendered}"
        );
    }
    assert!(result.fds.len() <= rw.data.ncols());
}

#[test]
fn parsimony_at_most_one_fd_per_attribute_class() {
    // FDX is "tailored towards finding a parsimonious set of FDs": at most
    // one FD per determined attribute, and never more FDs than attributes.
    let rw = realworld::nypd(0);
    // Subsample rows for test speed; structure survives.
    let rows: Vec<usize> = (0..rw.data.nrows()).step_by(7).collect();
    let ds = rw.data.gather(&rows);
    let result = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
    assert!(result.fds.len() <= ds.ncols());
    let mut seen = std::collections::HashSet::new();
    for fd in result.fds.iter() {
        assert!(seen.insert(fd.rhs()), "duplicate rhs in {:?}", result.fds);
    }
}

#[test]
fn pipeline_is_deterministic() {
    let data = generator::generate(&SynthConfig::default());
    let a = Fdx::new(FdxConfig::default())
        .discover(&data.noisy)
        .unwrap();
    let b = Fdx::new(FdxConfig::default())
        .discover(&data.noisy)
        .unwrap();
    assert_eq!(a.fds, b.fds);
    assert_eq!(a.order.as_slice(), b.order.as_slice());
}

#[test]
fn csv_to_fds_round_trip() {
    // CSV in, FDs out — the end-user path of the README.
    let rw = realworld::mammographic(3);
    let csv = fdx_data::write_csv_string(&rw.data);
    let parsed = fdx_data::read_csv_str(&csv).unwrap();
    assert_eq!(parsed.nrows(), rw.data.nrows());
    let result = Fdx::new(FdxConfig::default()).discover(&parsed).unwrap();
    assert!(
        !result.fds.is_empty(),
        "mammographic dependencies must survive a CSV round trip"
    );
}
