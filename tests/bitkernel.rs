//! Property suite for the bit-packed pair-agreement kernels (DESIGN.md §15).
//!
//! The packed transform and the partition-cached validation are pure
//! reorganizations of exact integer arithmetic, so their outputs must be
//! *bit-identical* — not merely close — to the reference paths:
//!
//! * the popcount Gram kernel vs a naive per-bit double loop, across
//!   matrix shapes and cache-block widths;
//! * [`fdx::pair_transform`]'s moment matrices vs the materialized 0/1
//!   sample matrix, across row counts, attribute counts, null policies,
//!   sampling strategies, and thread counts;
//! * [`fdx::refine_with_options`]'s FD sets with the partition cache on
//!   vs off, across thread counts, on synthetic and realistic corpora.

use fdx::{
    pair_transform, pair_transform_matrix, refine_with_options, Fdx, FdxConfig, NullPolicy,
    PairSampling, RefineOptions, TransformConfig,
};
use fdx_data::Dataset;
use fdx_linalg::BitMatrix;
use fdx_synth::generator::{self, SynthConfig};
use fdx_synth::realworld;

/// Deterministic splitmix64 stream for the kernel grids.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn gram_kernel_matches_naive_popcount_across_shapes_and_blocks() {
    let mut state = 0xFD;
    for (rows, bits) in [
        (1, 1),
        (3, 64),
        (5, 63),
        (8, 200),
        (17, 1000),
        (4, 64 * 600),
    ] {
        let mut m = BitMatrix::zeros(rows, bits);
        for r in 0..rows {
            for (w, word) in m.row_mut(r).iter_mut().enumerate() {
                *word = splitmix(&mut state);
                // Keep the trailing-bits-zero invariant on the last word.
                let used = bits - w * 64;
                if used < 64 {
                    *word &= (1u64 << used) - 1;
                }
            }
        }
        let mut naive = vec![0u64; rows * rows];
        for a in 0..rows {
            for b in a..rows {
                let mut c = 0;
                for i in 0..bits {
                    if m.get(a, i) && m.get(b, i) {
                        c += 1;
                    }
                }
                naive[a * rows + b] = c;
            }
        }
        assert_eq!(m.gram(), naive, "rows={rows} bits={bits}");
        for block in [1, 2, 7, 512] {
            let mut acc = vec![0u64; rows * rows];
            m.gram_accumulate(block, &mut acc);
            assert_eq!(acc, naive, "rows={rows} bits={bits} block={block}");
        }
    }
}

/// A categorical dataset with duplicate-heavy columns and a sprinkling of
/// nulls (empty strings infer as [`fdx_data::Value::Null`]).
fn noisy_dataset(rows: usize, k: usize, seed: u64) -> Dataset {
    let mut state = seed;
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut row = Vec::with_capacity(k);
        for a in 0..k {
            let r = splitmix(&mut state);
            if r % 13 == 0 {
                row.push(String::new()); // null cell
            } else {
                let domain = 2 + (a % 5) * 7;
                row.push(format!("v{}", r as usize % domain));
            }
        }
        cells.push(row);
    }
    let names: Vec<String> = (0..k).map(|a| format!("c{a}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let refs: Vec<Vec<&str>> = cells
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
    Dataset::from_string_rows(&name_refs, &slices)
}

/// Reference second moment from the materialized 0/1 sample matrix.
///
/// The matrix entries are exact 0.0/1.0, so the accumulated dot products
/// are exact integers (far below 2^53) and `dot / n` performs the identical
/// float division as `PairStats::second_moment` — any packing bug shows up
/// as a bit difference, not a tolerance failure.
fn reference_second_moment(ds: &Dataset, cfg: &TransformConfig) -> Vec<u64> {
    let z = pair_transform_matrix(ds, cfg);
    let (n, k) = (z.rows(), z.cols());
    let mut counts = vec![0u64; k * k];
    for a in 0..k {
        for b in 0..k {
            let mut dot = 0u64;
            for r in 0..n {
                if z[(r, a)] != 0.0 && z[(r, b)] != 0.0 {
                    dot += 1;
                }
            }
            counts[a * k + b] = dot;
        }
    }
    counts
}

#[test]
fn packed_moments_bit_identical_to_materialized_matrix() {
    for (rows, k) in [(64, 3), (129, 5), (400, 9)] {
        let ds = noisy_dataset(rows, k, 0xA11CE + rows as u64);
        for null_policy in [NullPolicy::NeverEqual, NullPolicy::NullEqualsNull] {
            for sampling in [
                PairSampling::CircularShift,
                PairSampling::UniformRandom { pairs_per_attr: 96 },
            ] {
                let cfg = TransformConfig {
                    sampling,
                    null_policy,
                    threads: Some(1),
                    ..TransformConfig::default()
                };
                let stats = pair_transform(&ds, &cfg);
                let n = stats.num_samples();
                let counts = reference_second_moment(&ds, &cfg);
                let s = stats.second_moment();
                for a in 0..k {
                    for b in 0..k {
                        let reference = counts[a * k + b] as f64 / n.max(1) as f64;
                        assert_eq!(
                            s[(a, b)].to_bits(),
                            reference.to_bits(),
                            "rows={rows} k={k} {null_policy:?} {sampling:?} cell=({a},{b})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn packed_moments_bit_identical_across_thread_counts() {
    for (rows, k) in [(150, 6), (333, 11)] {
        let ds = noisy_dataset(rows, k, 0xBEE + k as u64);
        let base_cfg = TransformConfig {
            threads: Some(1),
            ..TransformConfig::default()
        };
        let base = pair_transform(&ds, &base_cfg);
        let (cov0, sm0) = (base.covariance(), base.second_moment());
        for threads in [2, 4, 8] {
            let cfg = TransformConfig {
                threads: Some(threads),
                ..TransformConfig::default()
            };
            let stats = pair_transform(&ds, &cfg);
            let (cov, sm) = (stats.covariance(), stats.second_moment());
            for a in 0..k {
                for b in 0..k {
                    assert_eq!(
                        cov[(a, b)].to_bits(),
                        cov0[(a, b)].to_bits(),
                        "covariance threads={threads} cell=({a},{b})"
                    );
                    assert_eq!(
                        sm[(a, b)].to_bits(),
                        sm0[(a, b)].to_bits(),
                        "second moment threads={threads} cell=({a},{b})"
                    );
                }
            }
        }
    }
}

/// Unrefined candidates for a dataset: the pipeline with validation off.
fn raw_candidates(ds: &Dataset) -> fdx_data::FdSet {
    let cfg = FdxConfig {
        validate: false,
        ..FdxConfig::default()
    };
    Fdx::new(cfg).discover(ds).unwrap().fds
}

#[test]
fn partition_cache_and_threads_leave_fd_sets_byte_identical() {
    let synth = generator::generate(&SynthConfig {
        tuples: 800,
        attributes: 10,
        domain_range: (27, 125),
        noise_rate: 0.02,
        seed: 7,
    });
    let hospital = realworld::hospital(0);
    for (name, ds) in [("synth", &synth.noisy), ("hospital", &hospital.data)] {
        let candidates = raw_candidates(ds);
        let min_lift = FdxConfig::default().min_lift;
        let baseline = refine_with_options(
            ds,
            &candidates,
            min_lift,
            RefineOptions {
                threads: Some(1),
                partition_cache: false,
            },
        );
        assert!(
            !baseline.is_empty(),
            "{name}: refinement dropped every candidate; the equivalence check would be vacuous"
        );
        for threads in [1, 2, 4] {
            for partition_cache in [false, true] {
                let got = refine_with_options(
                    ds,
                    &candidates,
                    min_lift,
                    RefineOptions {
                        threads: Some(threads),
                        partition_cache,
                    },
                );
                assert_eq!(
                    got.fds(),
                    baseline.fds(),
                    "{name}: threads={threads} cache={partition_cache}"
                );
            }
        }
    }
}
