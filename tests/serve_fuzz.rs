//! Malformed-frame fuzz of the `fdx-serve` wire protocol.
//!
//! A deterministic ChaCha8-seeded generator throws 500 garbage frames at a
//! live server — random printable soup, raw bytes (usually invalid UTF-8),
//! truncated real frames, structurally-valid-but-wrong JSON, and
//! pathological nesting. Every single one must come back as a typed
//! `bad_request` reply on a healthy connection: no panic, no hang, no
//! silent close. Afterwards the same server must still serve a clean
//! discover request.

use fdx_serve::client::exchange;
use fdx_serve::{codes, RequestFrame, Response, ServeConfig, Server};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One raw exchange in bytes: send `payload` + newline, read one reply
/// line. Byte-level because much of the corpus is not valid UTF-8.
fn raw_exchange(addr: &str, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(payload).expect("write");
    stream.write_all(b"\n").expect("write newline");
    stream.flush().unwrap();
    let mut reply = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = stream.read(&mut chunk).expect("read");
        if n == 0 {
            break;
        }
        if let Some(pos) = chunk[..n].iter().position(|b| *b == b'\n') {
            reply.extend_from_slice(&chunk[..pos]);
            break;
        }
        reply.extend_from_slice(&chunk[..n]);
    }
    String::from_utf8(reply).expect("server replies are always utf-8")
}

/// A syntactically valid discover frame, used as mutation stock.
fn valid_line() -> String {
    RequestFrame {
        id: "stock".to_string(),
        csv: "a,b\n1,2\n3,4\n".to_string(),
        seed: Some(1),
        ..RequestFrame::default()
    }
    .to_line()
}

/// Structurally valid JSON that must still be rejected by strict parsing.
const WRONG_SHAPE: &[&str] = &[
    "[1,2,3]",
    "42",
    "\"just a string\"",
    "null",
    "true",
    "{}",
    r#"{"op":"discover"}"#,
    r#"{"op":"evict","id":"x"}"#,
    r#"{"csv":123}"#,
    r#"{"csv":"a\n","bogus":1}"#,
    r#"{"csv":"a\n","deadline_ms":-1}"#,
    r#"{"csv":"a\n","threads":0}"#,
    r#"{"csv":"a\n","chaos":["not.a.point"]}"#,
    r#"{"csv":"a\n","chaos":[7]}"#,
    r#"{"op":"shutdown","csv":"a\n"}"#,
    r#"{"csv":"a\n","threshold":"high"}"#,
];

fn garbage(rng: &mut ChaCha8Rng, case: usize) -> Vec<u8> {
    match case % 5 {
        // Random printable soup: overwhelmingly not JSON, and when it is
        // (single digits etc.) it is not an object.
        0 => {
            let len = rng.gen_range(1..200usize);
            (0..len)
                .map(|_| rng.gen_range(32..127u8))
                .map(|b| if b == b'\n' { b'?' } else { b })
                .collect()
        }
        // Raw bytes: usually invalid UTF-8; newlines masked to keep the
        // one-frame-per-line framing.
        1 => {
            let len = rng.gen_range(1..100usize);
            (0..len)
                .map(|_| rng.gen_range(0..=255u8))
                .map(|b| if b == b'\n' { 0xFF } else { b })
                .collect()
        }
        // A strict prefix of a valid frame: always unbalanced JSON.
        2 => {
            let line = valid_line().into_bytes();
            let cut = rng.gen_range(1..line.len());
            line[..cut].to_vec()
        }
        // Valid JSON, wrong shape for the protocol.
        3 => WRONG_SHAPE[rng.gen_range(0..WRONG_SHAPE.len())]
            .as_bytes()
            .to_vec(),
        // Pathological nesting beyond the parser's depth limit.
        _ => {
            let depth = rng.gen_range(65..300usize);
            let mut v = vec![b'['; depth];
            v.extend(vec![b']'; depth]);
            v
        }
    }
}

#[test]
fn five_hundred_garbage_frames_all_get_typed_bad_request() {
    let handle = Server::start(ServeConfig {
        threads: Some(2),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let mut rng = ChaCha8Rng::seed_from_u64(0xBAD_F8A3);
    for case in 0..500 {
        let payload = garbage(&mut rng, case);
        let reply = raw_exchange(&addr, &payload);
        let resp = Response::parse(&reply)
            .unwrap_or_else(|e| panic!("case {case}: unparseable reply {reply:?}: {e}"));
        assert_eq!(resp.status, "error", "case {case}: {payload:?} -> {resp:?}");
        assert!(
            resp.code_is(codes::BAD_REQUEST),
            "case {case}: {payload:?} -> {resp:?}"
        );
    }

    // The fuzzing left the server fully functional.
    let mut csv = String::from("zip,city\n");
    for i in 0..60 {
        let z = i % 12;
        csv.push_str(&format!("z{z},c{}\n", z / 3));
    }
    let clean = RequestFrame {
        id: "after-fuzz".to_string(),
        csv,
        seed: Some(7),
        ..RequestFrame::default()
    };
    let reply = exchange(&addr, &clean.to_line()).expect("post-fuzz exchange");
    let resp = Response::parse(&reply).unwrap();
    assert!(resp.is_ok(), "{resp:?}");

    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.bad_frames, 500, "{report:?}");
    assert_eq!(report.panics, 0);
    assert_eq!(report.completed, 1);
}
