//! Out-of-core equivalence: chunked ingestion is bit-identical to the
//! resident reader, at every chunk size and every thread count.
//!
//! A 300-row noisy-FD corpus is ingested at chunk sizes {1, 7, 64, n} and
//! compared against `read_csv_str` of the same bytes: the datasets must be
//! equal (same codes, same interning order), the pooled covariance must
//! match to the bit, and the full discovery output (FD set, autoregression,
//! Θ, order, noise variances, run summary) must be byte-identical — under
//! explicit kernel thread counts 1/2/4 and under the `FDX_THREADS`
//! environment override. One `#[test]` so the env mutation cannot race a
//! sibling test thread.

use fdx::{pair_transform, Fdx, FdxConfig, TransformConfig};
use fdx_data::{ingest_csv_file, read_csv_str, Dataset, IngestConfig};

const ROWS: usize = 300;

/// zip -> city -> state plus a noise column: real FDs with distractors.
fn corpus() -> String {
    let mut csv = String::from("zip,city,state,noise\n");
    for i in 0..ROWS {
        let z = i % 16;
        csv.push_str(&format!(
            "z{z},c{},s{},n{}\n",
            z / 2,
            z / 8,
            (i * 7919) % 13
        ));
    }
    csv
}

/// All f64 entries of a k×k matrix as raw bits — equality means identical
/// to the last ulp.
fn matrix_bits(m: &fdx_linalg::Matrix) -> Vec<u64> {
    let k = m.rows();
    (0..k)
        .flat_map(|i| (0..k).map(move |j| (i, j)))
        .map(|(i, j)| m[(i, j)].to_bits())
        .collect()
}

/// Everything deterministic about a run, rendered for comparison: the run
/// summary (timings stripped), FDs, and the numeric output to the bit.
fn fingerprint(dataset: &Dataset, threads: Option<usize>) -> String {
    let mut cfg = FdxConfig::with_seed(7);
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    let result = Fdx::new(cfg).discover(dataset).expect("discover");
    let summary = result.summary_json();
    let (head, _) = summary
        .split_once(",\"timings\"")
        .expect("summary has timings");
    let fds: Vec<String> = result
        .fds
        .iter()
        .map(|fd| fd.display(dataset.schema()).to_string())
        .collect();
    format!(
        "{head} fds={fds:?} order={:?} b={:?} theta={:?} omega={:?} health={}",
        result.order,
        matrix_bits(&result.autoregression),
        matrix_bits(&result.theta),
        result
            .noise_variances
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        result.health.to_json(),
    )
}

#[test]
fn chunked_ingest_is_bit_identical_to_resident_at_every_width() {
    let csv = corpus();
    let path = std::env::temp_dir().join(format!("fdx-equiv-{}.csv", std::process::id()));
    std::fs::write(&path, &csv).expect("write corpus");

    let resident = read_csv_str(&csv).expect("resident read");
    let mut chunked: Vec<(usize, Dataset)> = Vec::new();
    for chunk_rows in [1, 7, 64, ROWS] {
        let got = ingest_csv_file(
            &path,
            &IngestConfig {
                chunk_rows: Some(chunk_rows),
                ..IngestConfig::default()
            },
        )
        .expect("chunked ingest");
        assert!(!got.health.degraded(), "chunk_rows={chunk_rows}");
        assert_eq!(got.health.rows_kept, ROWS as u64, "chunk_rows={chunk_rows}");
        assert_eq!(got.health.keep_every, 1, "chunk_rows={chunk_rows}");
        assert_eq!(
            got.dataset, resident,
            "chunk_rows={chunk_rows}: dataset diverged from resident read"
        );
        chunked.push((chunk_rows, got.dataset));
    }

    // Pooled covariance to the bit, at kernel thread counts 1/2/4.
    for threads in [1usize, 2, 4] {
        let tc = TransformConfig {
            threads: Some(threads),
            ..TransformConfig::default()
        };
        let want = pair_transform(&resident, &tc).pooled_covariance();
        let want_bits = matrix_bits(&want);
        for (chunk_rows, ds) in &chunked {
            let got = pair_transform(ds, &tc).pooled_covariance();
            assert_eq!(
                matrix_bits(&got),
                want_bits,
                "covariance bits diverged at chunk_rows={chunk_rows} threads={threads}"
            );
        }
    }

    // Full-pipeline fingerprint: resident at 1 thread is the reference;
    // every (chunk size × thread count) cell must reproduce it exactly.
    let reference = fingerprint(&resident, Some(1));
    assert!(reference.contains("\"fds\":"), "{reference}");
    for threads in [1usize, 2, 4] {
        assert_eq!(
            fingerprint(&resident, Some(threads)),
            reference,
            "resident run diverged at threads={threads}"
        );
        for (chunk_rows, ds) in &chunked {
            assert_eq!(
                fingerprint(ds, Some(threads)),
                reference,
                "chunk_rows={chunk_rows} threads={threads}"
            );
        }
    }

    // The FDX_THREADS override resolves through the same path the CLI and
    // server use; the answer must not move. Single #[test] in this binary,
    // so the process-global env mutation cannot race another test.
    for threads in ["1", "2", "4"] {
        std::env::set_var("FDX_THREADS", threads);
        for (chunk_rows, ds) in &chunked {
            assert_eq!(
                fingerprint(ds, None),
                reference,
                "chunk_rows={chunk_rows} FDX_THREADS={threads}"
            );
        }
    }
    std::env::remove_var("FDX_THREADS");

    let _ = std::fs::remove_file(path);
}
