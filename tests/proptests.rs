//! Cross-crate property-based tests: invariants of the pair transform, the
//! validation scores, the metrics, and the discovery pipeline on random
//! inputs.
//!
//! Deterministic ChaCha8-seeded generators (the same zero-dependency style
//! as `serve_fuzz.rs`) replace an external property-testing framework: each
//! property runs a fixed number of cases from a pinned seed, so a failure
//! reproduces exactly by case index.

use fdx::{pair_transform, pair_transform_matrix, score_fd, Fdx, FdxConfig, TransformConfig};
use fdx_data::{Column, Dataset, Fd, FdSet, Schema, Value};
use fdx_eval::{edge_prf, undirected_edge_prf};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: usize = 24;

/// A random categorical dataset with `rows` rows and `cols` columns, each
/// with a small domain (codes 0..5).
fn random_dataset(rng: &mut ChaCha8Rng, rows: usize, cols: usize) -> Dataset {
    let schema = Schema::new(
        (0..cols)
            .map(|c| fdx_data::Attribute::categorical(format!("A{c}")))
            .collect(),
    );
    let columns: Vec<Column> = (0..cols)
        .map(|_| {
            let col_codes: Vec<u32> = (0..rows).map(|_| rng.gen_range(0..5u32)).collect();
            let dict: Vec<Value> = (0..5).map(|v| Value::text(format!("v{v}"))).collect();
            Column::from_codes(col_codes, dict)
        })
        .collect();
    Dataset::new(schema, columns)
}

/// A random small FD set: `1..5` edges with lhs in `0..lhs_max` and rhs in
/// `lhs_max..8` (so no edge is trivial).
fn random_fd_set(rng: &mut ChaCha8Rng, lhs_max: usize) -> FdSet {
    let n = rng.gen_range(1..5usize);
    FdSet::from_fds((0..n).map(|_| {
        let x = rng.gen_range(0..lhs_max);
        let y = rng.gen_range(lhs_max..8);
        Fd::new([x], y)
    }))
}

#[test]
fn streaming_stats_match_materialized_matrix() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9_1A01);
    for case in 0..CASES {
        let ds = random_dataset(&mut rng, 30, 4);
        let cfg = TransformConfig {
            parallel: false,
            ..TransformConfig::default()
        };
        let stats = pair_transform(&ds, &cfg);
        let m = pair_transform_matrix(&ds, &cfg);
        assert_eq!(m.rows(), stats.num_samples(), "case {case}");
        let s_stream = stats.pooled_covariance();
        let s_mat = fdx_stats::covariance(&m);
        for a in 0..4 {
            for b in 0..4 {
                assert!(
                    (s_stream[(a, b)] - s_mat[(a, b)]).abs() < 1e-10,
                    "case {case} ({a},{b}): {} vs {}",
                    s_stream[(a, b)],
                    s_mat[(a, b)]
                );
            }
        }
    }
}

#[test]
fn covariance_is_psd_diagonal() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9_1A02);
    for case in 0..CASES {
        let ds = random_dataset(&mut rng, 40, 5);
        let stats = pair_transform(&ds, &TransformConfig::default());
        let s = stats.covariance();
        for i in 0..5 {
            // Diagonal of any covariance is non-negative.
            assert!(s[(i, i)] >= -1e-12, "case {case}: var {i} = {}", s[(i, i)]);
        }
        assert!(s.asymmetry() < 1e-12, "case {case}");
    }
}

#[test]
fn correlation_entries_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9_1A03);
    for case in 0..CASES {
        let ds = random_dataset(&mut rng, 40, 4);
        let stats = pair_transform(&ds, &TransformConfig::default());
        let c = stats.correlation();
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    c[(i, j)].abs() <= 1.0 + 1e-9,
                    "case {case} ({i},{j}): {}",
                    c[(i, j)]
                );
            }
        }
    }
}

#[test]
fn fd_scores_are_probabilities() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9_1A04);
    for case in 0..CASES {
        let ds = random_dataset(&mut rng, 30, 4);
        for lhs in 0..4usize {
            for rhs in 0..4usize {
                if lhs == rhs {
                    continue;
                }
                let s = score_fd(&ds, &[lhs], rhs);
                assert!(
                    (0.0..=1.0).contains(&s.conditional),
                    "case {case}: {}",
                    s.conditional
                );
                assert!(
                    (0.0..=1.0).contains(&s.baseline),
                    "case {case}: {}",
                    s.baseline
                );
                assert!((0.0..=1.0).contains(&s.lift), "case {case}: {}", s.lift);
            }
        }
    }
}

#[test]
fn discovery_output_is_wellformed() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9_1A05);
    for case in 0..CASES {
        let ds = random_dataset(&mut rng, 50, 5);
        let result = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
        // No trivial FDs, rhs in range, at most one FD per rhs.
        let mut rhs_seen = std::collections::HashSet::new();
        for fd in result.fds.iter() {
            assert!(fd.rhs() < 5, "case {case}");
            assert!(!fd.lhs().contains(&fd.rhs()), "case {case}");
            assert!(rhs_seen.insert(fd.rhs()), "case {case}: duplicate rhs");
        }
        // B is strictly upper triangular in permuted coordinates: the
        // original-coordinate matrix must have zero diagonal.
        for i in 0..5 {
            assert_eq!(result.autoregression[(i, i)], 0.0, "case {case}");
        }
    }
}

#[test]
fn metrics_are_symmetric_on_equal_sets() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9_1A06);
    for case in 0..CASES {
        let set = random_fd_set(&mut rng, 5);
        let prf = edge_prf(&set, &set.clone());
        assert_eq!(prf.f1, 1.0, "case {case}");
        let u = undirected_edge_prf(&set, &set.clone());
        assert_eq!(u.f1, 1.0, "case {case}");
    }
}

#[test]
fn f1_never_exceeds_one() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9_1A07);
    for case in 0..CASES {
        let sa = random_fd_set(&mut rng, 4);
        let sb = random_fd_set(&mut rng, 4);
        let prf = edge_prf(&sa, &sb);
        assert!((0.0..=1.0).contains(&prf.precision), "case {case}");
        assert!((0.0..=1.0).contains(&prf.recall), "case {case}");
        assert!((0.0..=1.0).contains(&prf.f1), "case {case}");
        assert!(
            prf.f1 <= prf.precision.max(prf.recall) + 1e-12,
            "case {case}: f1 {} > max(p {}, r {})",
            prf.f1,
            prf.precision,
            prf.recall
        );
    }
}
