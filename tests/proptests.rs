//! Cross-crate property-based tests: invariants of the pair transform, the
//! validation scores, the metrics, and the discovery pipeline on random
//! inputs.

use fdx::{pair_transform, pair_transform_matrix, score_fd, Fdx, FdxConfig, TransformConfig};
use fdx_data::{Column, Dataset, Fd, FdSet, Schema, Value};
use fdx_eval::{edge_prf, undirected_edge_prf};
use proptest::prelude::*;

/// Strategy: a random categorical dataset with `rows` rows and `cols`
/// columns, each with a small domain.
fn dataset(rows: usize, cols: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(0u32..5, rows * cols).prop_map(move |codes| {
        let schema = Schema::new(
            (0..cols)
                .map(|c| fdx_data::Attribute::categorical(format!("A{c}")))
                .collect(),
        );
        let columns: Vec<Column> = (0..cols)
            .map(|c| {
                let col_codes: Vec<u32> = (0..rows).map(|r| codes[r * cols + c]).collect();
                let dict: Vec<Value> = (0..5).map(|v| Value::text(format!("v{v}"))).collect();
                Column::from_codes(col_codes, dict)
            })
            .collect();
        Dataset::new(schema, columns)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_stats_match_materialized_matrix(ds in dataset(30, 4)) {
        let cfg = TransformConfig {
            parallel: false,
            ..TransformConfig::default()
        };
        let stats = pair_transform(&ds, &cfg);
        let m = pair_transform_matrix(&ds, &cfg);
        prop_assert_eq!(m.rows(), stats.num_samples());
        let s_stream = stats.pooled_covariance();
        let s_mat = fdx_stats::covariance(&m);
        for a in 0..4 {
            for b in 0..4 {
                prop_assert!((s_stream[(a, b)] - s_mat[(a, b)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn covariance_is_psd_diagonal(ds in dataset(40, 5)) {
        let stats = pair_transform(&ds, &TransformConfig::default());
        let s = stats.covariance();
        for i in 0..5 {
            // Diagonal of any covariance is non-negative.
            prop_assert!(s[(i, i)] >= -1e-12, "var {} = {}", i, s[(i, i)]);
        }
        prop_assert!(s.asymmetry() < 1e-12);
    }

    #[test]
    fn correlation_entries_bounded(ds in dataset(40, 4)) {
        let stats = pair_transform(&ds, &TransformConfig::default());
        let c = stats.correlation();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!(c[(i, j)].abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn fd_scores_are_probabilities(ds in dataset(30, 4)) {
        for lhs in 0..4usize {
            for rhs in 0..4usize {
                if lhs == rhs { continue; }
                let s = score_fd(&ds, &[lhs], rhs);
                prop_assert!((0.0..=1.0).contains(&s.conditional));
                prop_assert!((0.0..=1.0).contains(&s.baseline));
                prop_assert!((0.0..=1.0).contains(&s.lift));
            }
        }
    }

    #[test]
    fn discovery_output_is_wellformed(ds in dataset(50, 5)) {
        let result = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
        // No trivial FDs, rhs in range, at most one FD per rhs.
        let mut rhs_seen = std::collections::HashSet::new();
        for fd in result.fds.iter() {
            prop_assert!(fd.rhs() < 5);
            prop_assert!(!fd.lhs().contains(&fd.rhs()));
            prop_assert!(rhs_seen.insert(fd.rhs()));
        }
        // B is strictly upper triangular in permuted coordinates: the
        // original-coordinate matrix must have zero diagonal.
        for i in 0..5 {
            prop_assert_eq!(result.autoregression[(i, i)], 0.0);
        }
    }

    #[test]
    fn metrics_are_symmetric_on_equal_sets(fds in proptest::collection::vec((0usize..5, 5usize..8), 1..5)) {
        let set = FdSet::from_fds(fds.into_iter().map(|(x, y)| Fd::new([x], y)));
        let prf = edge_prf(&set, &set.clone());
        prop_assert_eq!(prf.f1, 1.0);
        let u = undirected_edge_prf(&set, &set.clone());
        prop_assert_eq!(u.f1, 1.0);
    }

    #[test]
    fn f1_never_exceeds_one(
        a in proptest::collection::vec((0usize..4, 4usize..8), 1..5),
        b in proptest::collection::vec((0usize..4, 4usize..8), 1..5),
    ) {
        let sa = FdSet::from_fds(a.into_iter().map(|(x, y)| Fd::new([x], y)));
        let sb = FdSet::from_fds(b.into_iter().map(|(x, y)| Fd::new([x], y)));
        let prf = edge_prf(&sa, &sb);
        prop_assert!((0.0..=1.0).contains(&prf.precision));
        prop_assert!((0.0..=1.0).contains(&prf.recall));
        prop_assert!((0.0..=1.0).contains(&prf.f1));
        prop_assert!(prf.f1 <= prf.precision.max(prf.recall) + 1e-12);
    }
}
