//! The paper's headline comparative claim, as an integration test: on
//! synthetic data mixing true FDs with strong correlations, FDX's F1 beats
//! every baseline (≈2× on average in the paper).

use fdx_eval::{edge_prf, median, Method};
use fdx_synth::generator::{self, SynthConfig};

fn median_f1(method: &Method, noise: f64) -> f64 {
    let mut f1s = Vec::new();
    for seed in 0..3 {
        let data = generator::generate(&SynthConfig {
            tuples: 1_000,
            attributes: 10,
            domain_range: (64, 216),
            noise_rate: noise,
            seed: 40 + seed,
        });
        let out = method.clone().tuned_for_noise(noise).run(&data.noisy);
        assert!(!out.skipped, "{} skipped", method.name());
        f1s.push(edge_prf(&data.true_fds, &out.fds).f1);
    }
    median(&f1s)
}

#[test]
fn fdx_outperforms_every_baseline_at_low_noise() {
    let methods = Method::lineup();
    let scores: Vec<(String, f64)> = methods
        .iter()
        .map(|m| (m.name(), median_f1(m, 0.01)))
        .collect();
    let fdx_score = scores[0].1;
    assert!(fdx_score > 0.5, "FDX itself too weak: {scores:?}");
    for (name, score) in &scores[1..] {
        assert!(
            fdx_score >= *score,
            "FDX ({fdx_score:.3}) must not lose to {name} ({score:.3}); all: {scores:?}"
        );
    }
}

#[test]
fn syntactic_methods_flood_fd_counts() {
    // Table 6's qualitative claim: PYRO/TANE report far more FDs than FDX.
    let data = generator::generate(&SynthConfig {
        tuples: 600,
        attributes: 10,
        domain_range: (64, 216),
        noise_rate: 0.01,
        seed: 77,
    });
    let lineup = Method::lineup();
    let fdx = lineup[0].run(&data.noisy);
    let pyro = lineup[2].run(&data.noisy);
    let tane = lineup[3].run(&data.noisy);
    assert!(
        pyro.fds.len() > 2 * fdx.fds.len().max(1),
        "PYRO {} vs FDX {}",
        pyro.fds.len(),
        fdx.fds.len()
    );
    assert!(
        tane.fds.len() >= fdx.fds.len(),
        "TANE {} vs FDX {}",
        tane.fds.len(),
        fdx.fds.len()
    );
    // FDX stays parsimonious: at most one FD per attribute.
    assert!(fdx.fds.len() <= data.noisy.ncols());
}

#[test]
fn fdx_degrades_gracefully_with_noise() {
    let fdx = &Method::lineup()[0];
    let low = median_f1(fdx, 0.01);
    let high = median_f1(fdx, 0.30);
    assert!(low >= high, "low-noise F1 {low} < high-noise F1 {high}");
    assert!(low > 0.5, "low-noise F1 {low}");
}
