//! Resilience walk of the FDX pipeline: every rung of the recovery ladder,
//! the phase guards, the wall-clock budget, and a hand-rolled fuzz smoke
//! over degenerate inputs — all through the public `Fdx::discover` API,
//! with failures injected deterministically via `fdx_obs::faults`.

use fdx::{Fdx, FdxConfig, FdxError, RecoveryRung};
use fdx_data::Dataset;
use fdx_obs::faults;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// zip → city → state chain with solid support (the discover unit tests'
/// fixture, reused so ladder output is comparable to the clean path).
fn chain_dataset() -> Dataset {
    let mut rows: Vec<[String; 3]> = Vec::new();
    for s in 0..4 {
        for c in 0..2 {
            for z in 0..3 {
                for _ in 0..4 {
                    rows.push([
                        format!("z{s}{c}{z}"),
                        format!("city{s}{c}"),
                        format!("state{s}"),
                    ]);
                }
            }
        }
    }
    string_dataset(&["zip", "city", "state"], &rows_as_refs(&rows))
}

fn rows_as_refs(rows: &[[String; 3]]) -> Vec<Vec<&str>> {
    rows.iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect()
}

fn string_dataset(names: &[&str], rows: &[Vec<&str>]) -> Dataset {
    let slices: Vec<&[&str]> = rows.iter().map(|v| &v[..]).collect();
    Dataset::from_string_rows(names, &slices)
}

// ---------------------------------------------------------------------------
// The ladder, rung by rung.
// ---------------------------------------------------------------------------

#[test]
fn rung1_clean_run_is_pristine_and_deterministic() {
    let ds = chain_dataset();
    let a = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
    assert_eq!(a.health.rung, RecoveryRung::Glasso);
    assert!(!a.health.degraded(), "{:?}", a.health);
    assert!(
        a.summary_json().contains(r#""rung":1"#),
        "{}",
        a.summary_json()
    );
    assert!(a.health.render().contains("1/4 (glasso)"));
    // Disarmed injection points must not perturb anything: a second run is
    // bit-identical in its discovered FDs and autoregression matrix.
    let b = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
    assert_eq!(a.fds.edge_set(), b.fds.edge_set());
    assert_eq!(a.autoregression, b.autoregression);
    assert_eq!(a.health, b.health);
}

#[test]
fn rung2_relaxed_retry_after_single_non_convergence() {
    let ds = chain_dataset();
    let _f = faults::arm_times("glasso.force_no_converge", 1);
    let r = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
    assert_eq!(r.health.rung, RecoveryRung::RidgedRetry);
    assert!(r.health.degraded());
    assert!(
        r.summary_json().contains(r#""rung":2"#),
        "{}",
        r.summary_json()
    );
    assert!(r.health.render().contains("2/4 (ridged_retry)"));
    // Degraded, but still a working discovery: the chain's structure is an
    // FD output, not garbage.
    assert!(!r.fds.is_empty(), "{}", r.fds.render(ds.schema()));
}

#[test]
fn rung3_direct_inversion_when_glasso_keeps_failing() {
    let ds = chain_dataset();
    let _f = faults::arm("glasso.force_no_converge");
    let r = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
    assert_eq!(r.health.rung, RecoveryRung::DirectInversion);
    assert!(!r.health.glasso_converged);
    assert!(
        r.summary_json().contains(r#""rung":3"#),
        "{}",
        r.summary_json()
    );
    assert!(r.health.render().contains("3/4 (direct_inversion)"));
    assert!(!r.fds.is_empty(), "{}", r.fds.render(ds.schema()));
}

#[test]
fn rung4_neighborhood_selection_as_last_resort() {
    let ds = chain_dataset();
    let _f1 = faults::arm("glasso.force_no_converge");
    let _f2 = faults::arm("inversion.force_fail");
    let r = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
    assert_eq!(r.health.rung, RecoveryRung::NeighborhoodSelection);
    assert!(
        r.summary_json().contains(r#""rung":4"#),
        "{}",
        r.summary_json()
    );
    assert!(
        r.health.render().contains("4/4 (neighborhood_selection)"),
        "{}",
        r.health.render()
    );
    // Rung 4 promises support only; the surrogate Θ must still be finite
    // and factorizable end to end.
    for i in 0..3 {
        for j in 0..3 {
            assert!(r.autoregression[(i, j)].is_finite());
        }
    }
}

#[test]
fn rung_gauge_lands_in_exported_metrics() {
    let ds = chain_dataset();
    fdx_obs::set_enabled(true);
    let jsonl = {
        let _f = faults::arm("glasso.force_no_converge");
        Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
        fdx_obs::export_jsonl(&fdx_obs::Registry::global().snapshot())
    };
    fdx_obs::set_enabled(false);
    fdx_obs::Registry::global().reset();
    let _ = fdx_obs::take_trace();
    assert!(jsonl.contains("fdx.resilience.rung"), "{jsonl}");
    assert!(jsonl.contains("fdx.glasso.not_converged"), "{jsonl}");
    assert!(jsonl.contains("fdx.resilience.degraded_runs"), "{jsonl}");
}

// ---------------------------------------------------------------------------
// Guards and budget.
// ---------------------------------------------------------------------------

#[test]
fn covariance_nan_guard_is_a_typed_error_not_a_panic() {
    let ds = chain_dataset();
    let _f = faults::arm("covariance.inject_nan");
    let err = Fdx::new(FdxConfig::default()).discover(&ds).unwrap_err();
    assert_eq!(
        err,
        FdxError::NonFinite {
            stage: "covariance"
        }
    );
    assert!(err.to_string().contains("covariance"), "{err}");
}

#[test]
fn udut_fault_descends_to_ridge_retry_not_failure() {
    let ds = chain_dataset();
    let _f = faults::arm_times("udut.force_not_pd", 1);
    let r = Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
    assert_eq!(r.health.udut_ridge_retries, 1);
    assert!(r.health.degraded());
    assert!(r.summary_json().contains(r#""udut_ridge_retries":1"#));
}

#[test]
fn time_budget_exhaustion_is_typed_and_phase_labelled() {
    let ds = chain_dataset();
    let _f = faults::arm_value("clock.skew", 3600.0);
    let err = Fdx::new(FdxConfig::default().with_time_budget(5.0))
        .discover(&ds)
        .unwrap_err();
    match err {
        FdxError::BudgetExceeded {
            phase,
            elapsed_secs,
            budget_secs,
        } => {
            assert_eq!(phase, "covariance", "first post-transform check");
            assert!(elapsed_secs >= 3600.0);
            assert_eq!(budget_secs, 5.0);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    // No budget, same skew: the run completes.
    let _f2 = faults::arm_value("clock.skew", 3600.0);
    Fdx::new(FdxConfig::default()).discover(&ds).unwrap();
}

// ---------------------------------------------------------------------------
// Degenerate inputs through the public API.
// ---------------------------------------------------------------------------

/// Every dataset must come out of `discover` as Ok or a typed error; this
/// asserts the invariant and, on success, that the output is finite.
fn assert_survives(ds: &Dataset, label: &str) {
    match Fdx::new(FdxConfig::default()).discover(ds) {
        Ok(r) => {
            let k = ds.ncols();
            for i in 0..k {
                for j in 0..k {
                    assert!(
                        r.autoregression[(i, j)].is_finite(),
                        "{label}: non-finite B[{i},{j}]"
                    );
                }
            }
            for fd in r.fds.iter() {
                assert!(fd.rhs() < k, "{label}: FD names attribute out of range");
            }
        }
        Err(
            FdxError::InsufficientData { .. } | FdxError::Numerical(_) | FdxError::NonFinite { .. },
        ) => {}
        Err(other) => panic!("{label}: unexpected error class {other:?}"),
    }
}

#[test]
fn constant_column_survives() {
    let rows: Vec<[String; 3]> = (0..30)
        .map(|i| [format!("k{i}"), "same".to_string(), format!("v{}", i % 5)])
        .collect();
    let ds = string_dataset(&["key", "constant", "val"], &rows_as_refs(&rows));
    assert_survives(&ds, "constant column");
}

#[test]
fn all_null_column_survives() {
    let rows: Vec<[String; 3]> = (0..30)
        .map(|i| [format!("k{i}"), String::new(), format!("v{}", i % 5)])
        .collect();
    let ds = string_dataset(&["key", "nulls", "val"], &rows_as_refs(&rows));
    assert_eq!(
        ds.column(1).null_count(),
        30,
        "empty cells must parse as null"
    );
    assert_survives(&ds, "all-null column");
}

#[test]
fn identical_rows_survive() {
    let rows: Vec<[String; 3]> = (0..20)
        .map(|_| ["a".to_string(), "b".to_string(), "c".to_string()])
        .collect();
    let ds = string_dataset(&["x", "y", "z"], &rows_as_refs(&rows));
    assert_survives(&ds, "identical rows");
}

// ---------------------------------------------------------------------------
// Fuzz smoke: random tiny datasets, no proptest, fixed seed.
// ---------------------------------------------------------------------------

#[test]
fn fuzz_smoke_random_tiny_datasets() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xFD_FA17);
    // Cell alphabet mixing plain values with every null spelling the parser
    // accepts, plus empties and oddballs.
    const CELLS: [&str; 10] = ["a", "b", "c", "7", "3.5", "", "null", "NA", "?", "x y"];
    for case in 0..200 {
        let cols = rng.gen_range(0..=6usize);
        let rows = rng.gen_range(0..=40usize);
        let names: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        // Per-column domain size 1..=4 keeps agreement rates interesting.
        let domains: Vec<usize> = (0..cols).map(|_| rng.gen_range(1..=4usize)).collect();
        let data_rows: Vec<Vec<&str>> = (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|c| CELLS[rng.gen_range(0..domains[c].max(1) * 2) % CELLS.len()])
                    .collect()
            })
            .collect();
        let ds = string_dataset(&name_refs, &data_rows);
        match Fdx::new(FdxConfig::default()).discover(&ds) {
            Ok(r) => {
                for i in 0..cols {
                    for j in 0..cols {
                        assert!(
                            r.autoregression[(i, j)].is_finite(),
                            "case {case}: non-finite autoregression"
                        );
                    }
                }
            }
            Err(FdxError::InsufficientData {
                rows: er,
                attrs: ek,
            }) => {
                assert!(
                    rows < 2 || cols < 2,
                    "case {case}: spurious InsufficientData for {er}x{ek}"
                );
            }
            Err(FdxError::Numerical(_) | FdxError::NonFinite { .. }) => {
                // Typed numerical failures are acceptable outcomes; panics
                // and unclassified errors are not.
            }
            Err(other) => panic!("case {case}: unexpected error {other:?}"),
        }
    }
}
